// Unit tests for the network substrate: payload views, loss models, links
// (delay, serialization, queuing), routing and geo math.
#include <gtest/gtest.h>

#include <vector>

#include "net/geo.hpp"
#include "net/link.hpp"
#include "net/loss_model.hpp"
#include "net/network.hpp"
#include "net/packet.hpp"
#include "sim/simulator.hpp"

namespace dyncdn::net {
namespace {

using sim::SimTime;
using namespace dyncdn::sim::literals;

PacketPtr make_packet(NodeId src, NodeId dst, std::size_t payload_bytes) {
  auto p = acquire_packet();
  p->src = src;
  p->dst = dst;
  if (payload_bytes > 0) {
    p->payload.buffer = make_buffer(std::vector<std::uint8_t>(payload_bytes, 0xAB));
    p->payload.length = payload_bytes;
  }
  return p;
}

TEST(PayloadRef, SliceWithinBounds) {
  Buffer buf = make_buffer("hello world");
  PayloadRef ref{buf, 0, buf->size()};
  EXPECT_EQ(ref.slice(6, 5).to_text(), "world");
  EXPECT_EQ(ref.slice(0, 5).to_text(), "hello");
}

TEST(PayloadRef, SliceClampsAtEnd) {
  Buffer buf = make_buffer("abcdef");
  PayloadRef ref{buf, 0, 6};
  EXPECT_EQ(ref.slice(4, 100).to_text(), "ef");
  EXPECT_TRUE(ref.slice(6, 1).empty());
  EXPECT_TRUE(ref.slice(99, 1).empty());
}

TEST(PayloadRef, NestedSliceUsesAbsoluteOffsets) {
  Buffer buf = make_buffer("0123456789");
  PayloadRef mid = PayloadRef{buf, 0, 10}.slice(2, 6);  // "234567"
  EXPECT_EQ(mid.slice(1, 3).to_text(), "345");
}

TEST(Packet, WireSizeIncludesHeaders) {
  auto p = make_packet(NodeId{1}, NodeId{2}, 100);
  EXPECT_EQ(p->payload_size(), 100u);
  EXPECT_EQ(p->wire_size(), 140u);
  EXPECT_FALSE(p->to_string().empty());
}

TEST(FlowIdentity, ReverseSwapsEndpoints) {
  const FlowId f{Endpoint{NodeId{1}, 10}, Endpoint{NodeId{2}, 20}};
  const FlowId r = f.reversed();
  EXPECT_EQ(r.local.node, NodeId{2});
  EXPECT_EQ(r.remote.port, 10);
  EXPECT_EQ(r.reversed(), f);
}

TEST(LossModels, BernoulliRateIsApproximate) {
  sim::RngStream rng(7);
  BernoulliLoss loss(0.2);
  int drops = 0;
  for (int i = 0; i < 20000; ++i) {
    if (loss.should_drop(rng)) ++drops;
  }
  EXPECT_NEAR(drops / 20000.0, 0.2, 0.02);
}

TEST(LossModels, NoLossNeverDrops) {
  sim::RngStream rng(7);
  NoLoss loss;
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(loss.should_drop(rng));
}

TEST(LossModels, BernoulliRejectsBadProbability) {
  EXPECT_THROW(BernoulliLoss(-0.1), std::invalid_argument);
  EXPECT_THROW(BernoulliLoss(1.5), std::invalid_argument);
}

TEST(LossModels, GilbertElliottAverageRate) {
  GilbertElliottLoss ge(0.01, 0.2, 0.0, 0.3);
  // pi_bad = 0.01/0.21, avg = pi_bad * 0.3
  EXPECT_NEAR(ge.average_loss_rate(), (0.01 / 0.21) * 0.3, 1e-9);

  sim::RngStream rng(11);
  int drops = 0;
  const int kTrials = 200000;
  for (int i = 0; i < kTrials; ++i) {
    if (ge.should_drop(rng)) ++drops;
  }
  EXPECT_NEAR(drops / static_cast<double>(kTrials), ge.average_loss_rate(),
              0.005);
}

TEST(LossModels, GilbertElliottBursty) {
  // With sticky states, losses should cluster: measure the probability that
  // a drop is followed by another drop; it must exceed the marginal rate.
  GilbertElliottLoss ge(0.005, 0.1, 0.0, 0.5);
  sim::RngStream rng(13);
  int drops = 0, pairs = 0, prev = 0;
  const int kTrials = 300000;
  for (int i = 0; i < kTrials; ++i) {
    const int d = ge.should_drop(rng) ? 1 : 0;
    drops += d;
    if (prev && d) ++pairs;
    prev = d;
  }
  const double marginal = drops / static_cast<double>(kTrials);
  const double conditional = pairs / static_cast<double>(drops);
  EXPECT_GT(conditional, 2.0 * marginal);
}

TEST(Link, PropagationDelayOnly) {
  sim::Simulator simulator;
  SimTime arrival = SimTime::zero();
  LinkConfig cfg;
  cfg.propagation_delay = 25_ms;
  cfg.bandwidth_bps = 0;  // infinite
  Link link(simulator, cfg, [&](PacketPtr) { arrival = simulator.now(); },
            "test");
  link.transmit(make_packet(NodeId{1}, NodeId{2}, 1000));
  simulator.run();
  EXPECT_EQ(arrival, 25_ms);
}

TEST(Link, SerializationDelayAddsUp) {
  sim::Simulator simulator;
  std::vector<SimTime> arrivals;
  LinkConfig cfg;
  cfg.propagation_delay = 10_ms;
  cfg.bandwidth_bps = 8e6;  // 8 Mbit/s -> 1000 bytes per ms
  Link link(simulator, cfg,
            [&](PacketPtr) { arrivals.push_back(simulator.now()); }, "test");
  // Two packets of 960B payload -> 1000B wire -> 1ms serialization each.
  link.transmit(make_packet(NodeId{1}, NodeId{2}, 960));
  link.transmit(make_packet(NodeId{1}, NodeId{2}, 960));
  simulator.run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_EQ(arrivals[0], 11_ms);  // 1ms tx + 10ms prop
  EXPECT_EQ(arrivals[1], 12_ms);  // queued behind the first
}

TEST(Link, QueueOverflowDropsTail) {
  sim::Simulator simulator;
  int delivered = 0;
  LinkConfig cfg;
  cfg.propagation_delay = 1_ms;
  cfg.bandwidth_bps = 8e6;
  cfg.queue_capacity = 4;
  Link link(simulator, cfg, [&](PacketPtr) { ++delivered; }, "test");
  for (int i = 0; i < 10; ++i) {
    link.transmit(make_packet(NodeId{1}, NodeId{2}, 960));
  }
  simulator.run();
  EXPECT_EQ(delivered, 4);
  EXPECT_EQ(link.stats().drops_queue, 6u);
  EXPECT_EQ(link.stats().packets_delivered, 4u);
  EXPECT_EQ(link.stats().packets_offered, 10u);
}

TEST(Link, QueueDrainsOverTime) {
  sim::Simulator simulator;
  int delivered = 0;
  LinkConfig cfg;
  cfg.propagation_delay = 1_ms;
  cfg.bandwidth_bps = 8e6;
  cfg.queue_capacity = 2;
  Link link(simulator, cfg, [&](PacketPtr) { ++delivered; }, "test");
  link.transmit(make_packet(NodeId{1}, NodeId{2}, 960));
  link.transmit(make_packet(NodeId{1}, NodeId{2}, 960));
  simulator.run();  // drain
  link.transmit(make_packet(NodeId{1}, NodeId{2}, 960));
  simulator.run();
  EXPECT_EQ(delivered, 3);
  EXPECT_EQ(link.stats().drops_queue, 0u);
}

TEST(Link, LossModelDropsPackets) {
  sim::Simulator simulator;
  int delivered = 0;
  LinkConfig cfg;
  cfg.propagation_delay = 1_ms;
  cfg.bandwidth_bps = 0;
  cfg.queue_capacity = 2000;  // all packets enqueue before the run drains
  cfg.loss_factory = [] { return make_bernoulli_loss(0.5); };
  Link link(simulator, cfg, [&](PacketPtr) { ++delivered; }, "lossy");
  for (int i = 0; i < 1000; ++i) {
    link.transmit(make_packet(NodeId{1}, NodeId{2}, 100));
  }
  simulator.run();
  EXPECT_NEAR(delivered, 500, 80);
  EXPECT_EQ(link.stats().drops_loss + link.stats().packets_delivered, 1000u);
}

TEST(Network, DirectDelivery) {
  sim::Simulator simulator;
  Network network(simulator);
  Node& a = network.add_node("a");
  Node& b = network.add_node("b");
  LinkConfig cfg;
  cfg.propagation_delay = 5_ms;
  cfg.bandwidth_bps = 0;  // exact arrival-time check below
  network.connect(a, b, cfg);

  PacketPtr received;
  b.set_receive_handler([&](const PacketPtr& p) { received = p; });
  a.send(make_packet(a.id(), b.id(), 10));
  simulator.run();
  ASSERT_NE(received, nullptr);
  EXPECT_EQ(received->src, a.id());
  EXPECT_EQ(simulator.now(), 5_ms);
}

TEST(Network, MultiHopRoutingThroughRelay) {
  sim::Simulator simulator;
  Network network(simulator);
  Node& a = network.add_node("a");
  Node& relay = network.add_node("relay");
  Node& b = network.add_node("b");
  LinkConfig cfg;
  cfg.propagation_delay = 5_ms;
  cfg.bandwidth_bps = 0;
  network.connect(a, relay, cfg);
  network.connect(relay, b, cfg);
  // The relay node forwards anything not addressed to it.
  relay.set_receive_handler([](const PacketPtr&) {
    FAIL() << "relay must not locally deliver transit packets";
  });

  bool got = false;
  b.set_receive_handler([&](const PacketPtr&) { got = true; });
  a.send(make_packet(a.id(), b.id(), 10));
  simulator.run();
  EXPECT_TRUE(got);
  EXPECT_EQ(simulator.now(), 10_ms);  // two 5ms hops
}

TEST(Network, ShortestPathPreferred) {
  sim::Simulator simulator;
  Network network(simulator);
  Node& a = network.add_node("a");
  Node& slow = network.add_node("slow");
  Node& fast = network.add_node("fast");
  Node& b = network.add_node("b");
  LinkConfig slow_cfg;
  slow_cfg.propagation_delay = 50_ms;
  slow_cfg.bandwidth_bps = 0;
  LinkConfig fast_cfg;
  fast_cfg.propagation_delay = 5_ms;
  fast_cfg.bandwidth_bps = 0;
  network.connect(a, slow, slow_cfg);
  network.connect(slow, b, slow_cfg);
  network.connect(a, fast, fast_cfg);
  network.connect(fast, b, fast_cfg);

  bool got = false;
  b.set_receive_handler([&](const PacketPtr&) { got = true; });
  a.send(make_packet(a.id(), b.id(), 10));
  simulator.run();
  EXPECT_TRUE(got);
  EXPECT_EQ(simulator.now(), 10_ms);  // via fast path
  EXPECT_EQ(network.path_delay(a.id(), b.id()), 10_ms);
}

TEST(Network, NoRouteIncrementsDropCounter) {
  sim::Simulator simulator;
  Network network(simulator);
  Node& a = network.add_node("a");
  network.add_node("island");
  a.send(make_packet(a.id(), NodeId{2}, 10));
  simulator.run();
  EXPECT_EQ(network.no_route_drops(), 1u);
}

TEST(Network, DuplicateNodeNameThrows) {
  sim::Simulator simulator;
  Network network(simulator);
  network.add_node("x");
  EXPECT_THROW(network.add_node("x"), std::invalid_argument);
}

TEST(Network, FindNodeByName) {
  sim::Simulator simulator;
  Network network(simulator);
  Node& a = network.add_node("alpha");
  EXPECT_EQ(network.find_node("alpha"), &a);
  EXPECT_EQ(network.find_node("missing"), nullptr);
}

TEST(Network, SendTapsAndReceiveTapsFire) {
  sim::Simulator simulator;
  Network network(simulator);
  Node& a = network.add_node("a");
  Node& b = network.add_node("b");
  LinkConfig cfg;
  cfg.propagation_delay = 1_ms;
  network.connect(a, b, cfg);
  int sends = 0, recvs = 0;
  a.add_send_tap([&](const PacketPtr&) { ++sends; });
  b.add_receive_tap([&](const PacketPtr&) { ++recvs; });
  b.set_receive_handler([](const PacketPtr&) {});
  a.send(make_packet(a.id(), b.id(), 5));
  simulator.run();
  EXPECT_EQ(sends, 1);
  EXPECT_EQ(recvs, 1);
}

TEST(Network, PathDelayUnreachableIsInfinite) {
  sim::Simulator simulator;
  Network network(simulator);
  Node& a = network.add_node("a");
  Node& b = network.add_node("b");
  EXPECT_TRUE(network.path_delay(a.id(), b.id()).is_infinite());
  EXPECT_EQ(network.path_delay(a.id(), a.id()), SimTime::zero());
}

TEST(Link, BottleneckQueueingDelayGrowsLinearly) {
  // 10 packets into a 8Mbit/s link arrive 1ms apart: the k-th packet waits
  // k serialization slots.
  sim::Simulator simulator;
  std::vector<SimTime> arrivals;
  LinkConfig cfg;
  cfg.propagation_delay = 2_ms;
  cfg.bandwidth_bps = 8e6;  // 1000 B/ms
  Link link(simulator, cfg,
            [&](PacketPtr) { arrivals.push_back(simulator.now()); }, "bn");
  for (int i = 0; i < 10; ++i) {
    link.transmit(make_packet(NodeId{1}, NodeId{2}, 960));  // 1000B wire
  }
  simulator.run();
  ASSERT_EQ(arrivals.size(), 10u);
  for (std::size_t k = 0; k < arrivals.size(); ++k) {
    EXPECT_EQ(arrivals[k],
              SimTime::milliseconds(static_cast<std::int64_t>(k + 1)) + 2_ms)
        << k;
  }
}

TEST(Link, ReorderingDelaysSomePackets) {
  sim::Simulator simulator;
  std::vector<std::uint64_t> order;
  LinkConfig cfg;
  cfg.propagation_delay = 5_ms;
  cfg.bandwidth_bps = 0;
  cfg.reorder_probability = 0.5;
  cfg.reorder_extra_delay = 4_ms;
  Link link(simulator, cfg,
            [&](PacketPtr p) { order.push_back(p->id); }, "reord");
  for (std::uint64_t i = 1; i <= 200; ++i) {
    auto p = make_packet(NodeId{1}, NodeId{2}, 100);
    p->id = i;
    link.transmit(std::move(p));
  }
  simulator.run();
  ASSERT_EQ(order.size(), 200u);
  EXPECT_GT(link.stats().packets_reordered, 50u);
  // Delivery must NOT be in id order (some overtaking happened)...
  EXPECT_FALSE(std::is_sorted(order.begin(), order.end()));
  // ...but every packet arrived exactly once.
  std::vector<std::uint64_t> sorted = order;
  std::sort(sorted.begin(), sorted.end());
  for (std::uint64_t i = 1; i <= 200; ++i) EXPECT_EQ(sorted[i - 1], i);
}

TEST(Network, AsymmetricLinkDirectionsHonored) {
  sim::Simulator simulator;
  Network network(simulator);
  Node& a = network.add_node("a");
  Node& b = network.add_node("b");
  LinkConfig fast;
  fast.propagation_delay = 2_ms;
  fast.bandwidth_bps = 0;
  LinkConfig slow;
  slow.propagation_delay = 30_ms;
  slow.bandwidth_bps = 0;
  network.connect(a, b, fast, slow);

  SimTime a_to_b, b_to_a;
  b.set_receive_handler([&](const PacketPtr&) { a_to_b = simulator.now(); });
  a.set_receive_handler([&](const PacketPtr&) { b_to_a = simulator.now(); });
  a.send(make_packet(a.id(), b.id(), 10));
  simulator.run();
  b.send(make_packet(b.id(), a.id(), 10));
  simulator.run();
  EXPECT_EQ(a_to_b, 2_ms);
  EXPECT_EQ(b_to_a, 32_ms);
}

TEST(Network, SelfAddressedPacketDeliversLocally) {
  sim::Simulator simulator;
  Network network(simulator);
  Node& a = network.add_node("a");
  bool got = false;
  a.set_receive_handler([&](const PacketPtr&) { got = true; });
  a.send(make_packet(a.id(), a.id(), 10));
  simulator.run();
  EXPECT_TRUE(got);
}

TEST(Geo, HaversineKnownDistance) {
  // Minneapolis to Chicago is roughly 355 miles.
  const GeoPoint msp{44.98, -93.27};
  const GeoPoint chi{41.88, -87.63};
  EXPECT_NEAR(haversine_miles(msp, chi), 355.0, 15.0);
  EXPECT_NEAR(haversine_km(msp, chi), 571.0, 25.0);
}

TEST(Geo, ZeroDistanceSamePoint) {
  const GeoPoint p{40.0, -100.0};
  EXPECT_DOUBLE_EQ(haversine_miles(p, p), 0.0);
  EXPECT_EQ(propagation_delay(p, p), SimTime::zero());
}

TEST(Geo, PropagationDelayScalesWithDistance) {
  // 124 miles of fiber ~ 1ms one way.
  EXPECT_NEAR(propagation_delay_miles(124.0).to_milliseconds(), 1.0, 1e-6);
  EXPECT_NEAR(propagation_delay_miles(1240.0).to_milliseconds(), 10.0, 1e-6);
}

TEST(Geo, MilesForDelayInvertsDelay) {
  const double miles = 345.0;
  EXPECT_NEAR(miles_for_delay(propagation_delay_miles(miles)), miles, 0.01);
}

}  // namespace
}  // namespace dyncdn::net
