#include "net/packet.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <new>

#include "mem/slab.hpp"

namespace dyncdn::net {

namespace {

/// Per-thread slab of Packet-sized blocks. Each simulation shard runs
/// single-threaded between barriers, so no locking; blocks released on a
/// different thread than they were acquired on simply migrate pools.
thread_local mem::SlabPool t_packet_slab(sizeof(Packet), 256);

/// Payload buffers are variable-size, so they are served from a small set
/// of size-class slabs; anything larger than the top class falls back to
/// the heap. Classes cover the common cases: ACK-less small writes and
/// HTTP heads (256), MSS-sized segments (2048 > 1448 + header), and
/// serialized responses (16K/64K).
constexpr std::size_t kClassCapacity[] = {256, 2048, 16384, 65536};
constexpr std::size_t kClassBlocksPerChunk[] = {64, 32, 8, 4};
constexpr std::size_t kClassCount = std::size(kClassCapacity);
constexpr std::uint8_t kHeapClass = 0xFF;

struct BufferPools {
  mem::SlabPool cls[kClassCount] = {
      mem::SlabPool(sizeof(ByteBuf) + kClassCapacity[0],
                    kClassBlocksPerChunk[0]),
      mem::SlabPool(sizeof(ByteBuf) + kClassCapacity[1],
                    kClassBlocksPerChunk[1]),
      mem::SlabPool(sizeof(ByteBuf) + kClassCapacity[2],
                    kClassBlocksPerChunk[2]),
      mem::SlabPool(sizeof(ByteBuf) + kClassCapacity[3],
                    kClassBlocksPerChunk[3]),
  };
};
static_assert(kClassCount == 4, "pool initializers above track the classes");

thread_local BufferPools t_buffer_pools;

std::uint8_t class_for(std::size_t size) {
  for (std::size_t c = 0; c < kClassCount; ++c) {
    if (size <= kClassCapacity[c]) return static_cast<std::uint8_t>(c);
  }
  return kHeapClass;
}

}  // namespace

ByteBuf* allocate_bytebuf(std::size_t size) {
  const std::uint8_t cls = class_for(size);
  void* block = cls == kHeapClass
                    ? ::operator new(sizeof(ByteBuf) + size)
                    : t_buffer_pools.cls[cls].allocate();
  auto* b = new (block) ByteBuf();
  b->size_ = static_cast<std::uint32_t>(size);
  b->cls_ = cls;
  return b;
}

void release_bytebuf(ByteBuf* b) noexcept {
  const std::uint8_t cls = b->cls_;
  b->~ByteBuf();
  if (cls == kHeapClass) {
    ::operator delete(b);
  } else {
    t_buffer_pools.cls[cls].deallocate(b);
  }
}

Buffer make_buffer(std::span<const std::uint8_t> bytes) {
  ByteBuf* b = allocate_bytebuf(bytes.size());
  if (!bytes.empty()) std::memcpy(b->mutable_data(), bytes.data(), bytes.size());
  return Buffer::adopt(b);
}

Buffer make_buffer(std::string_view text) {
  return make_buffer(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(text.data()), text.size()));
}

PacketPtr acquire_packet() {
  return PacketPtr(new (t_packet_slab.allocate()) Packet());
}

void release_packet(Packet* p) noexcept {
  p->~Packet();
  t_packet_slab.deallocate(p);
}

std::size_t packet_pool_free_count() { return t_packet_slab.free_count(); }

std::size_t buffer_pool_free_count() {
  std::size_t n = 0;
  for (const mem::SlabPool& pool : t_buffer_pools.cls) n += pool.free_count();
  return n;
}

PayloadRef PayloadRef::slice(std::size_t off, std::size_t len) const {
  PayloadRef out;
  if (off >= length) return out;
  len = std::min(len, length - off);
  if (len == 0) return out;

  const std::size_t first = first_length();
  std::size_t remaining = len;
  auto it = chain.begin();
  if (off < first) {
    out.buffer = buffer;
    out.offset = offset + off;
    const std::size_t take = std::min(remaining, first - off);
    out.length = take;
    remaining -= take;
  } else {
    std::size_t skip = off - first;
    while (skip >= it->length) skip -= (it++)->length;
    out.buffer = it->buffer;
    out.offset = it->offset + skip;
    const std::size_t take = std::min(remaining, it->length - skip);
    out.length = take;
    remaining -= take;
    ++it;
  }
  for (; remaining > 0; ++it) {
    const std::size_t take = std::min(remaining, it->length);
    out.chain.push_back(PayloadSlice{it->buffer, it->offset, take});
    out.length += take;
    remaining -= take;
  }
  return out;
}

void PayloadRef::append(PayloadRef tail) {
  if (tail.length == 0) return;
  if (length == 0) {
    *this = std::move(tail);
    return;
  }
  // Merge physically adjacent views of the same buffer, so contiguous
  // data split across many application writes of one buffer collapses
  // back into a single slice.
  const auto push_slice = [this](const Buffer& b, std::size_t off,
                                 std::size_t len) {
    if (len == 0) return;
    const bool primary = chain.empty();
    const Buffer& last_buf = primary ? buffer : chain.back().buffer;
    const std::size_t last_end =
        primary ? offset + first_length()
                : chain.back().offset + chain.back().length;
    if (b == last_buf && off == last_end) {
      if (!primary) chain.back().length += len;
      length += len;  // growing the primary slice is implicit in `length`
    } else {
      chain.push_back(PayloadSlice{b, off, len});
      length += len;
    }
  };
  push_slice(tail.buffer, tail.offset, tail.first_length());
  for (const PayloadSlice& s : tail.chain) {
    push_slice(s.buffer, s.offset, s.length);
  }
}

std::string PayloadRef::to_text() const {
  std::string out;
  append_to(out);
  return out;
}

void PayloadRef::append_to(std::string& out) const {
  out.reserve(out.size() + length);
  for_each_slice([&out](std::span<const std::uint8_t> span) {
    out.append(reinterpret_cast<const char*>(span.data()), span.size());
  });
}

std::string TcpFlags::to_string() const {
  std::string s;
  if (syn) s += "SYN|";
  if (ack) s += "ACK|";
  if (fin) s += "FIN|";
  if (rst) s += "RST|";
  if (s.empty()) return "-";
  s.pop_back();
  return s;
}

std::string Packet::to_string() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "%u:%u -> %u:%u seq=%llu ack=%llu win=%u [%s] %zuB",
                src.value(), static_cast<unsigned>(tcp.src_port), dst.value(),
                static_cast<unsigned>(tcp.dst_port),
                static_cast<unsigned long long>(tcp.seq),
                static_cast<unsigned long long>(tcp.ack), tcp.window,
                tcp.flags.to_string().c_str(), payload.length);
  return buf;
}

}  // namespace dyncdn::net
