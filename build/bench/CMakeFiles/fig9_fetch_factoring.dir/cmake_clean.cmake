file(REMOVE_RECURSE
  "CMakeFiles/fig9_fetch_factoring.dir/fig9_fetch_factoring.cpp.o"
  "CMakeFiles/fig9_fetch_factoring.dir/fig9_fetch_factoring.cpp.o.d"
  "fig9_fetch_factoring"
  "fig9_fetch_factoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_fetch_factoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
