file(REMOVE_RECURSE
  "CMakeFiles/interactive_search.dir/interactive_search.cpp.o"
  "CMakeFiles/interactive_search.dir/interactive_search.cpp.o.d"
  "interactive_search"
  "interactive_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interactive_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
