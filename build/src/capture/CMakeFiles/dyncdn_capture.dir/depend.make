# Empty dependencies file for dyncdn_capture.
# This may be replaced when dependencies are built.
