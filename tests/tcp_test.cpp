// TCP state-machine tests: handshake, transfer integrity, congestion
// control dynamics, loss recovery, flow control and teardown.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <tuple>
#include <vector>

#include "harness.hpp"
#include "net/packet.hpp"
#include "tcp/socket.hpp"
#include "tcp/stack.hpp"

namespace dyncdn::tcp {
namespace {

using dyncdn::testing::pattern_text;
using dyncdn::testing::TwoNodeHarness;
using dyncdn::testing::TwoNodeOptions;
using sim::SimTime;
using namespace dyncdn::sim::literals;

constexpr net::Port kPort = 80;

/// Collects everything a server needs for an echo/sink test.
struct SinkServer {
  std::string received;
  bool remote_closed = false;
  bool established = false;

  void install(TcpStack& stack) {
    stack.listen(kPort, [this](TcpSocket& s) {
      TcpSocket::Callbacks cb;
      cb.on_connected = [this] { established = true; };
      cb.on_data = [this](net::PayloadRef d) { received += d.to_text(); };
      cb.on_remote_close = [this, &s] {
        remote_closed = true;
        s.close();
      };
      s.set_callbacks(std::move(cb));
    });
  }
};

TEST(TcpHandshake, TakesOneAndHalfRtt) {
  TwoNodeOptions opt;
  opt.one_way_delay = 20_ms;
  opt.bandwidth_bps = 0;  // isolate propagation
  TwoNodeHarness h(opt);

  SinkServer sink;
  sink.install(*h.server);

  SimTime client_connected = SimTime::zero();
  TcpSocket::Callbacks cb;
  cb.on_connected = [&] { client_connected = h.simulator.now(); };
  h.client->connect({h.server_node->id(), kPort}, std::move(cb));
  h.simulator.run();

  // Client learns of establishment after SYN + SYN-ACK = 1 RTT.
  EXPECT_EQ(client_connected, 40_ms);
  EXPECT_TRUE(sink.established);
}

TEST(TcpHandshake, SrttSeededFromHandshake) {
  TwoNodeOptions opt;
  opt.one_way_delay = 30_ms;
  opt.bandwidth_bps = 0;
  TwoNodeHarness h(opt);
  SinkServer sink;
  sink.install(*h.server);
  TcpSocket& s = h.client->connect({h.server_node->id(), kPort}, {});
  h.simulator.run();
  EXPECT_NEAR(s.srtt().to_milliseconds(), 60.0, 1.0);
}

TEST(TcpTransfer, SmallPayloadIntact) {
  TwoNodeHarness h;
  SinkServer sink;
  sink.install(*h.server);

  TcpSocket::Callbacks cb;
  TcpSocket& s = h.client->connect({h.server_node->id(), kPort}, {});
  s.set_callbacks(std::move(cb));
  s.send_text("GET /search?q=computer+science HTTP/1.1\r\n\r\n");
  h.simulator.run();
  EXPECT_EQ(sink.received, "GET /search?q=computer+science HTTP/1.1\r\n\r\n");
}

TEST(TcpTransfer, DataQueuedBeforeConnectIsDelivered) {
  TwoNodeHarness h;
  SinkServer sink;
  sink.install(*h.server);
  TcpSocket& s = h.client->connect({h.server_node->id(), kPort}, {});
  // send() immediately, well before ESTABLISHED.
  s.send_text("early");
  h.simulator.run();
  EXPECT_EQ(sink.received, "early");
}

TEST(TcpTransfer, LargeTransferIntactAndSegmented) {
  TwoNodeHarness h;
  SinkServer sink;
  sink.install(*h.server);

  const std::string payload = pattern_text(300 * 1000);
  TcpSocket& s = h.client->connect({h.server_node->id(), kPort}, {});
  s.send_text(payload);
  h.simulator.run();
  EXPECT_EQ(sink.received.size(), payload.size());
  EXPECT_EQ(sink.received, payload);
  EXPECT_EQ(s.stats().bytes_sent, payload.size());
  EXPECT_GE(s.stats().segments_sent,
            payload.size() / h.client->default_config().mss);
  EXPECT_EQ(s.stats().retransmits_rto, 0u);
  EXPECT_EQ(s.stats().retransmits_fast, 0u);
}

/// Run one client->server transfer of `payload`, applying send() in
/// `chunks`-sized pieces (cycled; empty = one large send). Records the
/// receiver's per-segment delivery chunks and the sender's wire counters.
struct TransferLog {
  std::vector<std::size_t> delivery_sizes;
  std::string received;
  std::uint64_t segments_sent = 0;
  std::uint64_t bytes_sent = 0;
};

TransferLog run_chunked_transfer(const std::string& payload,
                                 const std::vector<std::size_t>& chunks,
                                 const TwoNodeOptions& opt = {}) {
  TwoNodeHarness h(opt);
  TransferLog log;
  h.server->listen(kPort, [&log](TcpSocket& s) {
    TcpSocket::Callbacks cb;
    cb.on_data = [&log](net::PayloadRef d) {
      log.delivery_sizes.push_back(d.length);
      log.received += d.to_text();
    };
    s.set_callbacks(std::move(cb));
  });
  TcpSocket& s = h.client->connect({h.server_node->id(), kPort}, {});
  if (chunks.empty()) {
    s.send_text(payload);
  } else {
    std::size_t off = 0;
    for (std::size_t i = 0; off < payload.size(); ++i) {
      const std::size_t n =
          std::min(chunks[i % chunks.size()], payload.size() - off);
      s.send_text(std::string_view(payload).substr(off, n));
      off += n;
    }
  }
  h.simulator.run();
  log.segments_sent = s.stats().segments_sent;
  log.bytes_sent = s.stats().bytes_sent;
  return log;
}

// Scattered send buffers: queueing the stream as many small writes (each
// its own buffer, most far below MSS) must put exactly the same segments
// on the wire as one large write — gather_payload fills segments to MSS
// across write boundaries, chaining slices (or byte-copying under
// DYNCDN_TCP_GATHER_COPY; this test passes under both).
TEST(TcpTransfer, ScatteredSendsMatchOneLargeSend) {
  const std::string payload = pattern_text(120 * 1000);
  const TransferLog whole = run_chunked_transfer(payload, {});
  const TransferLog scattered =
      run_chunked_transfer(payload, {1, 7, 64, 333, 1448, 2000, 5, 900});

  EXPECT_EQ(scattered.received, payload);
  EXPECT_EQ(scattered.received, whole.received);
  EXPECT_EQ(scattered.bytes_sent, whole.bytes_sent);
  EXPECT_EQ(scattered.segments_sent, whole.segments_sent);
  // Same wire segmentation => same per-segment delivery chunk sizes.
  EXPECT_EQ(scattered.delivery_sizes, whole.delivery_sizes);
}

// Same equivalence under loss: a deterministic data-segment drop forces a
// retransmission, which rewinds gather_payload behind its scan hint and
// re-gathers a segment whose bytes straddle several small writes.
TEST(TcpTransfer, ScatteredSendsSurviveRetransmission) {
  const std::string payload = pattern_text(80 * 1000);
  TwoNodeOptions opt;
  opt.drop_indices_c2s = {9, 25};
  const TransferLog whole = run_chunked_transfer(payload, {}, opt);
  const TransferLog scattered =
      run_chunked_transfer(payload, {3, 1448, 11, 700, 2900, 1}, opt);

  EXPECT_EQ(whole.received, payload);
  EXPECT_EQ(scattered.received, payload);
  EXPECT_EQ(scattered.bytes_sent, whole.bytes_sent);
}

TEST(TcpTransfer, MultipleWritesArriveInOrder) {
  TwoNodeHarness h;
  SinkServer sink;
  sink.install(*h.server);
  TcpSocket& s = h.client->connect({h.server_node->id(), kPort}, {});
  s.send_text("one:");
  s.send_text("two:");
  s.send_text("three");
  h.simulator.run();
  EXPECT_EQ(sink.received, "one:two:three");
}

TEST(TcpTransfer, BidirectionalEcho) {
  TwoNodeHarness h;
  std::string client_got;
  h.server->listen(kPort, [](TcpSocket& s) {
    TcpSocket::Callbacks cb;
    cb.on_data = [&s](net::PayloadRef d) {
      s.send_text("echo:" + d.to_text());
    };
    s.set_callbacks(std::move(cb));
  });

  TcpSocket::Callbacks cb;
  cb.on_data = [&](net::PayloadRef d) { client_got += d.to_text(); };
  TcpSocket& s = h.client->connect({h.server_node->id(), kPort}, std::move(cb));
  s.send_text("ping");
  h.simulator.run();
  EXPECT_EQ(client_got, "echo:ping");
}

TEST(TcpTransfer, PersistentConnectionSecondExchangeSkipsHandshake) {
  TwoNodeHarness h;
  int syns = 0;
  h.client_node->add_send_tap([&](const net::PacketPtr& p) {
    if (p->tcp.flags.syn) ++syns;
  });

  std::string client_got;
  h.server->listen(kPort, [](TcpSocket& s) {
    TcpSocket::Callbacks cb;
    cb.on_data = [&s](net::PayloadRef d) { s.send_text("r:" + d.to_text()); };
    s.set_callbacks(std::move(cb));
  });
  TcpSocket::Callbacks cb;
  cb.on_data = [&](net::PayloadRef d) { client_got += d.to_text(); };
  TcpSocket& s = h.client->connect({h.server_node->id(), kPort}, std::move(cb));
  s.send_text("q1");
  h.simulator.run();
  s.send_text("q2");
  h.simulator.run();
  EXPECT_EQ(client_got, "r:q1r:q2");
  EXPECT_EQ(syns, 1);  // one handshake for two request/response exchanges
}

TEST(TcpCongestion, LargerInitialWindowTransfersFaster) {
  auto transfer_time = [](std::size_t iw) {
    TwoNodeOptions opt;
    opt.one_way_delay = 50_ms;
    opt.tcp.initial_cwnd_segments = iw;
    TwoNodeHarness h(opt);
    SinkServer sink;
    sink.install(*h.server);
    TcpSocket& s = h.client->connect({h.server_node->id(), kPort}, {});
    s.send_text(pattern_text(100 * 1000));
    const SimTime end = h.simulator.run();
    EXPECT_EQ(sink.received.size(), 100u * 1000u);
    return end;
  };
  const SimTime t2 = transfer_time(2);
  const SimTime t10 = transfer_time(10);
  EXPECT_LT(t10, t2);
  // IW=10 should save at least ~2 RTTs of slow-start ramp.
  EXPECT_GE((t2 - t10).to_milliseconds(), 150.0);
}

TEST(TcpCongestion, SlowStartDoublesPerRtt) {
  // Over an infinite-bandwidth 100ms-RTT link, packet bursts per RTT round
  // should follow IW, 2*IW, 4*IW... while in slow start.
  TwoNodeOptions opt;
  opt.one_way_delay = 50_ms;
  opt.bandwidth_bps = 0;
  opt.tcp.initial_cwnd_segments = 2;
  TwoNodeHarness h(opt);
  SinkServer sink;
  sink.install(*h.server);

  std::vector<SimTime> data_sends;
  h.client_node->add_send_tap([&](const net::PacketPtr& p) {
    if (p->payload_size() > 0) data_sends.push_back(h.simulator.now());
  });

  TcpSocket& s = h.client->connect({h.server_node->id(), kPort}, {});
  s.send_text(pattern_text(60 * 1448));  // 60 MSS worth
  h.simulator.run();
  ASSERT_EQ(sink.received.size(), 60u * 1448u);

  // Bucket send times into RTT rounds starting from the first data send.
  std::vector<int> per_round;
  for (const SimTime t : data_sends) {
    const auto round = static_cast<std::size_t>(
        (t - data_sends.front()).to_milliseconds() / 100.0 + 0.5);
    if (per_round.size() <= round) per_round.resize(round + 1, 0);
    ++per_round[round];
  }
  ASSERT_GE(per_round.size(), 3u);
  EXPECT_EQ(per_round[0], 2);   // IW
  EXPECT_EQ(per_round[1], 4);   // doubled
  EXPECT_EQ(per_round[2], 8);   // doubled again
}

TEST(TcpLoss, BernoulliLossStillDeliversEverything) {
  TwoNodeOptions opt;
  opt.loss = 0.02;
  opt.seed = 99;
  TwoNodeHarness h(opt);
  SinkServer sink;
  sink.install(*h.server);
  const std::string payload = pattern_text(200 * 1000);
  TcpSocket& s = h.client->connect({h.server_node->id(), kPort}, {});
  s.send_text(payload);
  h.simulator.run();
  EXPECT_EQ(sink.received, payload);
  EXPECT_GT(s.stats().retransmits_fast + s.stats().retransmits_rto, 0u);
}

TEST(TcpLoss, SingleDropTriggersFastRetransmitNotRto) {
  TwoNodeOptions opt;
  opt.one_way_delay = 20_ms;
  // Drop one mid-stream data packet client->server. Packet indices on the
  // c2s link: 0=SYN, 1=handshake-ACK, 2.. = data. Drop the 5th data packet.
  opt.drop_indices_c2s = {6};
  TwoNodeHarness h(opt);
  SinkServer sink;
  sink.install(*h.server);
  const std::string payload = pattern_text(50 * 1448);
  TcpSocket& s = h.client->connect({h.server_node->id(), kPort}, {});
  s.send_text(payload);
  h.simulator.run();
  EXPECT_EQ(sink.received, payload);
  EXPECT_EQ(s.stats().retransmits_fast, 1u);
  EXPECT_EQ(s.stats().retransmits_rto, 0u);
  EXPECT_GE(s.stats().dupacks_received, 3u);
}

TEST(TcpLoss, LostSynIsRetransmitted) {
  TwoNodeOptions opt;
  opt.drop_indices_c2s = {0};  // drop the first SYN
  TwoNodeHarness h(opt);
  SinkServer sink;
  sink.install(*h.server);
  SimTime connected = SimTime::zero();
  TcpSocket::Callbacks cb;
  cb.on_connected = [&] { connected = h.simulator.now(); };
  h.client->connect({h.server_node->id(), kPort}, std::move(cb));
  h.simulator.run();
  EXPECT_TRUE(sink.established);
  // Initial RTO is 1s, so establishment happens shortly after.
  EXPECT_GE(connected, 1_s);
  EXPECT_LE(connected, 1_s + 100_ms);
}

TEST(TcpLoss, LostFinIsRetransmittedAndConnectionCloses) {
  TwoNodeOptions opt;
  opt.drop_indices_c2s = {3};  // SYN, hs-ACK, data, FIN <- dropped
  TwoNodeHarness h(opt);
  SinkServer sink;
  sink.install(*h.server);
  bool closed = false;
  TcpSocket::Callbacks cb;
  cb.on_closed = [&] { closed = true; };
  TcpSocket& s = h.client->connect({h.server_node->id(), kPort}, std::move(cb));
  s.send_text("x");
  s.close();
  h.simulator.run();
  EXPECT_TRUE(closed);
  EXPECT_TRUE(sink.remote_closed);
  EXPECT_EQ(sink.received, "x");
}

TEST(TcpTeardown, GracefulCloseBothSides) {
  TwoNodeHarness h;
  SinkServer sink;
  sink.install(*h.server);
  bool client_closed = false, remote_closed = false;
  TcpSocket::Callbacks cb;
  cb.on_closed = [&] { client_closed = true; };
  cb.on_remote_close = [&] { remote_closed = true; };
  TcpSocket& s = h.client->connect({h.server_node->id(), kPort}, std::move(cb));
  s.send_text("bye");
  s.close();
  h.simulator.run();
  EXPECT_TRUE(client_closed);
  EXPECT_TRUE(remote_closed);  // server's FIN reached the client
  EXPECT_TRUE(sink.remote_closed);
  EXPECT_EQ(h.client->socket_count(), 0u);
  EXPECT_EQ(h.server->socket_count(), 0u);
}

TEST(TcpTeardown, CloseBeforeConnectCompletes) {
  TwoNodeHarness h;
  SinkServer sink;
  sink.install(*h.server);
  TcpSocket& s = h.client->connect({h.server_node->id(), kPort}, {});
  s.send_text("payload");
  s.close();  // close while still in SYN_SENT
  h.simulator.run();
  EXPECT_EQ(sink.received, "payload");
  EXPECT_TRUE(sink.remote_closed);
  EXPECT_EQ(h.client->socket_count(), 0u);
}

TEST(TcpTeardown, SendAfterCloseThrows) {
  TwoNodeHarness h;
  SinkServer sink;
  sink.install(*h.server);
  TcpSocket& s = h.client->connect({h.server_node->id(), kPort}, {});
  s.close();
  EXPECT_THROW(s.send_text("late"), std::logic_error);
}

TEST(TcpTeardown, ConnectToClosedPortGetsReset) {
  TwoNodeHarness h;  // server has no listener
  bool closed = false, connected = false;
  TcpSocket::Callbacks cb;
  cb.on_connected = [&] { connected = true; };
  cb.on_closed = [&] { closed = true; };
  h.client->connect({h.server_node->id(), 9999}, std::move(cb));
  h.simulator.run();
  EXPECT_FALSE(connected);
  EXPECT_TRUE(closed);
  EXPECT_EQ(h.client->socket_count(), 0u);
}

TEST(TcpTeardown, AbortSendsReset) {
  TwoNodeHarness h;
  SinkServer sink;
  sink.install(*h.server);
  bool server_closed = false;
  h.server->listen(81, [&](TcpSocket& s) {
    TcpSocket::Callbacks cb;
    cb.on_closed = [&] { server_closed = true; };
    s.set_callbacks(std::move(cb));
  });
  TcpSocket& s = h.client->connect({h.server_node->id(), 81}, {});
  h.simulator.run();
  s.abort();
  h.simulator.run();
  EXPECT_TRUE(server_closed);
  EXPECT_EQ(h.server->socket_count(), 0u);
}

TEST(TcpFlowControl, ReceiverWindowLimitsFlight) {
  TwoNodeOptions opt;
  opt.one_way_delay = 100_ms;  // long RTT so flight would otherwise grow
  opt.tcp.receive_buffer = 8 * 1448;
  opt.tcp.initial_cwnd_segments = 64;  // cwnd not the limiter
  TwoNodeHarness h(opt);
  SinkServer sink;
  sink.install(*h.server);

  std::size_t max_flight = 0;
  TcpSocket& s = h.client->connect({h.server_node->id(), kPort}, {});
  s.send_text(pattern_text(100 * 1448));
  // Sample flight size at every event boundary.
  while (!h.simulator.idle()) {
    h.simulator.run_steps(1);
    max_flight = std::max(max_flight, s.unacked_bytes());
  }
  EXPECT_EQ(sink.received.size(), 100u * 1448u);
  EXPECT_LE(max_flight, 8u * 1448u + 1);  // +1 for the FIN-less probe edge
}

TEST(TcpFlowControl, DelayedAckStillCompletes) {
  TwoNodeOptions opt;
  opt.tcp.delayed_ack = true;
  TwoNodeHarness h(opt);
  SinkServer sink;
  sink.install(*h.server);
  const std::string payload = pattern_text(40 * 1448);
  TcpSocket& s = h.client->connect({h.server_node->id(), kPort}, {});
  s.send_text(payload);
  h.simulator.run();
  EXPECT_EQ(sink.received, payload);
}

TEST(TcpFlowControl, DelayedAckReducesAckCount) {
  auto count_acks = [](bool delayed) {
    TwoNodeOptions opt;
    opt.tcp.delayed_ack = delayed;
    TwoNodeHarness h(opt);
    SinkServer sink;
    sink.install(*h.server);
    std::uint64_t acks = 0;
    h.server_node->add_send_tap([&](const net::PacketPtr& p) {
      if (p->payload_size() == 0 && p->tcp.flags.ack && !p->tcp.flags.syn &&
          !p->tcp.flags.fin) {
        ++acks;
      }
    });
    TcpSocket& s = h.client->connect({h.server_node->id(), kPort}, {});
    s.send_text(pattern_text(60 * 1448));
    h.simulator.run();
    EXPECT_EQ(sink.received.size(), 60u * 1448u);
    return acks;
  };
  EXPECT_LT(count_acks(true), count_acks(false));
}

TEST(TcpDeterminism, SameSeedSameSchedule) {
  auto run_once = [] {
    TwoNodeOptions opt;
    opt.loss = 0.05;
    opt.seed = 1234;
    TwoNodeHarness h(opt);
    SinkServer sink;
    sink.install(*h.server);
    TcpSocket& s = h.client->connect({h.server_node->id(), kPort}, {});
    s.send_text(pattern_text(80 * 1000));
    const SimTime end = h.simulator.run();
    return std::tuple{end, h.simulator.events_executed(), sink.received.size()};
  };
  EXPECT_EQ(run_once(), run_once());
}

// Property sweep: transfers of many sizes over varied RTT/loss must always
// deliver byte-identical data.
class TcpTransferSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, int, double>> {};

TEST_P(TcpTransferSweep, PayloadAlwaysIntact) {
  const auto [size, rtt_ms, loss] = GetParam();
  TwoNodeOptions opt;
  opt.one_way_delay = SimTime::milliseconds(rtt_ms / 2);
  opt.loss = loss;
  opt.seed = 42 + size + static_cast<std::size_t>(rtt_ms);
  TwoNodeHarness h(opt);
  SinkServer sink;
  sink.install(*h.server);
  const std::string payload = pattern_text(size);
  TcpSocket& s = h.client->connect({h.server_node->id(), kPort}, {});
  s.send_text(payload);
  s.close();
  h.simulator.run();
  EXPECT_EQ(sink.received, payload);
  EXPECT_TRUE(sink.remote_closed);
}

INSTANTIATE_TEST_SUITE_P(
    SizesRttsLosses, TcpTransferSweep,
    ::testing::Combine(
        ::testing::Values<std::size_t>(1, 100, 1448, 1449, 10 * 1448,
                                       100 * 1000),
        ::testing::Values(2, 20, 200),
        ::testing::Values(0.0, 0.01, 0.05)));

}  // namespace
}  // namespace dyncdn::tcp
