# Empty dependencies file for ext_dns_resolution.
# This may be replaced when dependencies are built.
