// Interactive "search as you type" emulation (§6).
//
// "We find that using the interactive search feature, after each letter a
// user has typed, a separate query (using a new TCP connection) is sent to
// the FE server. The delivery of each query hence still fits our basic
// model; although ... the search query processing times at the BE data
// centers are generally reduced because the subsequent queries are highly
// correlated with previous queries."
//
// InteractiveTyper emulates a user typing a query: after every typed
// character it issues the current prefix as a full search query over a
// fresh TCP connection, with human inter-keystroke gaps.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "cdn/client.hpp"
#include "search/keywords.hpp"
#include "sim/random.hpp"

namespace dyncdn::cdn {

struct TypingOptions {
  /// Inter-keystroke delay, uniform in [min, max].
  double keystroke_min_ms = 120.0;
  double keystroke_max_ms = 320.0;
  /// Issue a query only once the prefix reaches this length (real
  /// suggest-as-you-type waits for a couple of characters).
  std::size_t min_prefix = 2;
};

struct KeystrokeResult {
  std::string prefix;       // query text issued at this keystroke
  QueryResult result;       // per-query app-level observation
};

struct TypingSessionResult {
  std::vector<KeystrokeResult> keystrokes;
  /// Number of distinct TCP connections used (== keystrokes.size(); kept
  /// explicit because the §6 claim is one connection per keystroke).
  std::size_t connections = 0;
};

/// Emulates typing `keyword.text` character by character against `server`,
/// issuing one query per keystroke. `done` fires after the final query's
/// response completes.
class InteractiveTyper {
 public:
  using Handler = std::function<void(const TypingSessionResult&)>;

  InteractiveTyper(QueryClient& client, TypingOptions options,
                   std::uint64_t seed);

  /// Begin a typing session. One session at a time per typer.
  void type(net::Endpoint server, const search::Keyword& keyword,
            Handler done);

 private:
  void issue_next();

  QueryClient& client_;
  TypingOptions options_;
  sim::RngStream rng_;

  net::Endpoint server_;
  search::Keyword keyword_;
  std::size_t next_char_ = 0;
  std::size_t outstanding_ = 0;
  bool typing_done_ = false;
  TypingSessionResult session_;
  Handler done_;
};

}  // namespace dyncdn::cdn
