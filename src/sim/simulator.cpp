#include "sim/simulator.hpp"

#include <stdexcept>

namespace dyncdn::sim {

void Simulator::advance_to(SimTime t) {
  if (t < now_) {
    throw std::logic_error("Simulator::advance_to: moving the clock back (" +
                           t.to_string() + " < " + now_.to_string() + ")");
  }
  if (queue_.next_time() < t) {
    throw std::logic_error(
        "Simulator::advance_to: overtaking a pending event (" +
        queue_.next_time().to_string() + " < " + t.to_string() + ")");
  }
  now_ = t;
}

SimTime Simulator::run() {
  while (!queue_.empty()) {
    // The clock must advance *before* the callback runs so that work
    // scheduled from inside the callback sees the correct current time.
    now_ = queue_.next_time();
    queue_.pop_and_run();
    ++events_executed_;
  }
  return now_;
}

SimTime Simulator::run_until(SimTime deadline) {
  while (!queue_.empty() && queue_.next_time() <= deadline) {
    now_ = queue_.next_time();
    queue_.pop_and_run();
    ++events_executed_;
  }
  if (now_ < deadline) {
    // Advance the clock to the deadline (even with an empty queue): the
    // caller asked for this much simulated time to pass, and components
    // such as TCP's idle-cwnd validation read the clock directly.
    now_ = deadline;
  }
  return now_;
}

std::uint64_t Simulator::run_window(SimTime end) {
  const std::uint64_t before = events_executed_;
  horizon_ = end;
  while (!queue_.empty() && queue_.next_time() < end) {
    now_ = queue_.next_time();
    queue_.pop_and_run();
    ++events_executed_;
  }
  horizon_ = SimTime::infinity();
  return events_executed_ - before;
}

std::size_t Simulator::run_steps(std::size_t n) {
  std::size_t done = 0;
  while (done < n && !queue_.empty()) {
    now_ = queue_.next_time();
    queue_.pop_and_run();
    ++events_executed_;
    ++done;
  }
  return done;
}

}  // namespace dyncdn::sim
