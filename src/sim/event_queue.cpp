#include "sim/event_queue.hpp"

#include <cassert>
#include <stdexcept>
#include <utility>

namespace dyncdn::sim {

EventId EventQueue::schedule(SimTime at, Callback cb) {
  if (at < last_popped_) {
    throw std::logic_error("EventQueue::schedule: scheduling into the past (" +
                           at.to_string() + " < " + last_popped_.to_string() +
                           ")");
  }
  const std::uint64_t seq = next_seq_++;
  heap_.push(Entry{at, seq, std::move(cb)});
  pending_.insert(seq);
  return EventId{seq};
}

bool EventQueue::cancel(EventId id) {
  if (!id.valid()) return false;
  if (pending_.erase(id.value()) == 0) return false;  // already fired/cancelled
  cancelled_.insert(id.value());
  return true;
}

void EventQueue::skim() {
  while (!heap_.empty()) {
    auto it = cancelled_.find(heap_.top().seq);
    if (it == cancelled_.end()) return;
    cancelled_.erase(it);
    heap_.pop();
  }
}

bool EventQueue::empty() const {
  const_cast<EventQueue*>(this)->skim();
  return heap_.empty();
}

SimTime EventQueue::next_time() const {
  const_cast<EventQueue*>(this)->skim();
  return heap_.empty() ? SimTime::infinity() : heap_.top().at;
}

SimTime EventQueue::pop_and_run() {
  skim();
  assert(!heap_.empty() && "pop_and_run on empty queue");
  // priority_queue::top() returns const&; the callback must be moved out
  // before pop. const_cast is confined to this one extraction point.
  Entry entry = std::move(const_cast<Entry&>(heap_.top()));
  heap_.pop();
  pending_.erase(entry.seq);
  last_popped_ = entry.at;
  entry.cb();
  return entry.at;
}

std::size_t EventQueue::pending_count() const { return pending_.size(); }

}  // namespace dyncdn::sim
