# Empty dependencies file for split_tcp_comparison.
# This may be replaced when dependencies are built.
