#include "obs/export_prometheus.hpp"

#include <cinttypes>
#include <cstdio>
#include <map>

#include "obs/metrics.hpp"

namespace dyncdn::obs {

namespace {

// Metric-description table for `# HELP` lines, keyed by unprefixed name.
// Descriptions are one sentence, no trailing period, per common exposition
// style; unknown names simply get no HELP line.
const std::map<std::string_view, std::string_view>& help_table() {
  static const std::map<std::string_view, std::string_view> table = {
      {"net_packets_created", "Packets constructed by any node"},
      {"net_packets_routed", "Packets forwarded along a routed path"},
      {"net_no_route_drops", "Packets dropped for lack of a route"},
      {"link_packets_offered", "Packets offered to link queues"},
      {"link_packets_delivered", "Packets delivered across links"},
      {"link_bytes_delivered", "Payload bytes delivered across links"},
      {"link_drops_queue", "Packets dropped by full link queues"},
      {"link_drops_loss", "Packets dropped by random link loss"},
      {"link_packets_reordered", "Packets delivered out of order"},
      {"tcp_sockets_opened", "TCP sockets opened"},
      {"tcp_bytes_sent", "Application bytes sent over TCP"},
      {"tcp_bytes_received", "Application bytes received over TCP"},
      {"tcp_segments_sent", "TCP data segments transmitted"},
      {"tcp_retransmits_rto", "Retransmissions triggered by RTO expiry"},
      {"tcp_retransmits_fast", "Fast retransmissions (triple dupack)"},
      {"tcp_dupacks_received", "Duplicate ACKs received"},
      {"fe_queries_handled", "Queries handled by front-end servers"},
      {"fe_cache_hits", "Dynamic-result cache hits at front-ends"},
      {"fe_static_cache_hits", "Static-prefix cache hits at front-ends"},
      {"fe_backend_pool_peak", "Peak pooled FE-to-BE connections"},
      {"fe_fetch_queue_peak", "Peak depth of the FE fetch queue"},
      {"fe_active_requests_peak", "Peak concurrent requests at a front-end"},
      {"be_queries_served", "Queries served by the back-end data center"},
      {"be_queue_depth_peak", "Peak back-end processing queue depth"},
      {"queries_analyzed", "Query timelines analyzed end to end"},
      {"query_rtt_ms", "Client-FE handshake RTT in milliseconds"},
      {"query_t_static_ms", "T_static = t4 - t2 in milliseconds"},
      {"query_t_dynamic_ms", "T_dynamic = t5 - t2 in milliseconds"},
      {"query_t_delta_ms", "T_delta = t5 - t4 in milliseconds"},
      {"query_overall_ms", "Overall delay t5 - t1 in milliseconds"},
      {"sim_events_executed", "Events executed by the kernel"},
      {"sim_events_scheduled", "Events scheduled into the kernel"},
      {"sim_timer_cancels", "Timer events cancelled before firing"},
      {"sim_event_heap_peak", "Peak pending-event count in the kernel"},
      {"pdes_windows", "Conservative-DES lookahead windows executed"},
      {"pdes_barrier_stalls", "Shard-window executions with zero events"},
      {"pdes_stall_wall_ns", "Wall nanoseconds workers spent in barriers"},
      {"pdes_cross_shard_packets", "Packets crossing shard boundaries"},
      {"pdes_serial_fallbacks", "Events run via the zero-lookahead fallback"},
      {"pdes_shards", "Event-kernel shards for the scenario"},
      {"stream_timelines_online", "Timelines reduced online by streaming"},
      {"stream_late_packets", "Packets arriving after stream finalization"},
      {"capture_retained_bytes_peak", "Peak bytes retained by captures"},
      {"analyzer_bytes_peak", "Peak bytes held by the streaming analyzer"},
      {"analyzer_live_bytes_peak", "Peak live allocation during analysis"},
      {"attr_queries", "Queries decomposed by latency attribution"},
      {"attr_reconcile_failures",
       "Attribution sums that failed to telescope to T_dynamic"},
      {"attr_skipped", "Queries skipped by attribution (failed or partial)"},
      {"attr_dns_ms", "dns.resolve span duration in milliseconds"},
      {"attr_connect_ms", "Client-FE handshake (tb to SYN-ACK) ms"},
      {"attr_ack_ms", "GET-to-ACK time t2 - t1 in milliseconds"},
      {"attr_uplink_ms", "Request uplink t1 to FE receipt in milliseconds"},
      {"attr_fe_wait_ms", "FE wait from receipt to fetch issue in ms"},
      {"attr_fe_service_ms", "FE parse plus static service span in ms"},
      {"attr_fe_fetch_ms", "FE fetch issue to first BE byte in ms"},
      {"attr_delivery_ms", "First BE byte to t5 delivery in milliseconds"},
  };
  return table;
}

void append_double(std::string& out, double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out += buf;
}

void append_help(std::string& out, const std::string& full,
                 const std::string& name) {
  const std::string_view help = metric_help(name);
  if (help.empty()) return;
  out += "# HELP " + full + " " + escape_help(help);
  out.push_back('\n');
}

}  // namespace

std::string_view metric_help(std::string_view name) {
  const auto& table = help_table();
  const auto it = table.find(name);
  return it == table.end() ? std::string_view{} : it->second;
}

std::string escape_help(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::string escape_label_value(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else if (c == '"') {
      out += "\\\"";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::string export_prometheus(const MetricsRegistry& registry,
                              const std::string& prefix) {
  std::string out;
  for (const auto& [name, value] : registry.counters()) {
    const std::string full = prefix + name;
    append_help(out, full, name);
    out += "# TYPE " + full + " counter\n" + full + " ";
    append_u64(out, value);
    out.push_back('\n');
  }
  for (const auto& [name, value] : registry.gauges()) {
    const std::string full = prefix + name;
    append_help(out, full, name);
    out += "# TYPE " + full + " gauge\n" + full + " ";
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%" PRId64, value);
    out += buf;
    out.push_back('\n');
  }
  for (const auto& [name, histogram] : registry.histograms()) {
    const std::string full = prefix + name;
    append_help(out, full, name);
    out += "# TYPE " + full + " histogram\n";
    const auto& bounds = Histogram::upper_bounds();
    const auto& buckets = histogram.bucket_counts();
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < buckets.size(); ++i) {
      cumulative += buckets[i];
      // Skip interior empty prefixes? No — Prometheus wants every bucket,
      // but 65 lines x N histograms is noisy; emit only buckets that
      // change the cumulative count, plus the mandatory +Inf line.
      const bool is_inf = i == buckets.size() - 1;
      if (buckets[i] == 0 && !is_inf) continue;
      out += full + "_bucket{le=\"";
      if (is_inf) {
        out += "+Inf";
      } else {
        append_double(out, bounds[i]);
      }
      out += "\"} ";
      append_u64(out, cumulative);
      out.push_back('\n');
    }
    out += full + "_sum ";
    append_double(out, histogram.sum());
    out.push_back('\n');
    out += full + "_count ";
    append_u64(out, histogram.count());
    out.push_back('\n');
  }
  return out;
}

bool write_prometheus(const MetricsRegistry& registry,
                      const std::string& path,
                      const std::string& prefix) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string body = export_prometheus(registry, prefix);
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) ==
                  body.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace dyncdn::obs
