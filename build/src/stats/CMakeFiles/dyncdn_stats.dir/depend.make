# Empty dependencies file for dyncdn_stats.
# This may be replaced when dependencies are built.
