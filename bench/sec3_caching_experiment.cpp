// §3 reproduction: "Do FE Servers Cache Search Results?"
//
// Protocol (as in the paper): submit the same query repeatedly to a fixed
// FE, then distinct queries to the same FE, and compare the T_dynamic
// distributions. Run three ways:
//   1. against the honest FE (no result cache) -> expect NO caching signal;
//   2. against a counterfactual FE with result caching enabled -> the
//      detector must fire (validates the methodology's power);
//   3. the counterfactual again from a *distant* client -> the cache is
//      operating but invisible, demonstrating why the probe must be close.
//
// Quick: 40 reps. DYNCDN_FULL=1: 120 reps.
#include <cstdio>

#include "bench_util.hpp"
#include "stats/descriptive.hpp"
#include "testbed/experiment.hpp"
#include "testbed/scenario.hpp"

using namespace dyncdn;

namespace {

std::size_t client_by_rtt(testbed::Scenario& s, bool nearest) {
  std::size_t best = 0;
  sim::SimTime best_rtt =
      nearest ? sim::SimTime::infinity() : sim::SimTime::zero();
  for (std::size_t i = 0; i < s.clients().size(); ++i) {
    const sim::SimTime rtt = s.client_fe_rtt(i, 0);
    if ((nearest && rtt < best_rtt) || (!nearest && rtt > best_rtt)) {
      best_rtt = rtt;
      best = i;
    }
  }
  return best;
}

void run_case(const std::string& label, bool fe_caches, bool near_probe,
              std::size_t reps) {
  testbed::ScenarioOptions opt;
  opt.profile = cdn::google_like_profile();
  opt.client_count = 24;
  opt.seed = 33;
  opt.fe_cache_results = fe_caches;
  testbed::Scenario scenario(opt);
  scenario.warm_up();

  const std::size_t probe = client_by_rtt(scenario, near_probe);
  const double probe_rtt =
      scenario.client_fe_rtt(probe, 0).to_milliseconds();
  const auto result =
      testbed::run_caching_experiment(scenario, probe, 0, reps);

  bench::section(label);
  std::printf("probe: %s (RTT %.1f ms), %zu+%zu queries\n",
              scenario.clients()[probe].vantage.name.c_str(), probe_rtt,
              result.t_dynamic_same_ms.size(),
              result.t_dynamic_distinct_ms.size());
  std::printf("T_dynamic same-query:     %s\n",
              stats::summarize(result.t_dynamic_same_ms).to_string().c_str());
  std::printf("T_dynamic distinct-query: %s\n",
              stats::summarize(result.t_dynamic_distinct_ms)
                  .to_string()
                  .c_str());
  std::printf("verdict: %s\n", result.detection.verdict().c_str());
  std::printf("ground truth: FE cache hits = %zu\n", result.fe_cache_hits);
}

}  // namespace

int main() {
  const std::size_t reps = bench::full_scale() ? 120 : 40;
  bench::banner("§3 — Do FE servers cache search results?",
                "same-query-repeated vs distinct-queries against a fixed FE "
                "(KS comparison of T_dynamic)");

  run_case("1) honest FE (paper's real-world case)", /*fe_caches=*/false,
           /*near_probe=*/true, reps);
  run_case("2) counterfactual caching FE, nearby probe", true, true, reps);
  run_case("3) counterfactual caching FE, distant probe "
           "(fetch hides behind delivery)",
           true, false, reps);

  std::printf(
      "\npaper conclusion reproduced: with the honest FE the distributions "
      "are\nconsistent -> FE servers do not appear to cache dynamically "
      "generated\nsearch results. The counterfactual run shows the method "
      "would detect\ncaching if it existed (from a low-RTT vantage point).\n");
  return 0;
}
