file(REMOVE_RECURSE
  "CMakeFiles/dyncdn_analysis.dir/boundary.cpp.o"
  "CMakeFiles/dyncdn_analysis.dir/boundary.cpp.o.d"
  "CMakeFiles/dyncdn_analysis.dir/reassembly.cpp.o"
  "CMakeFiles/dyncdn_analysis.dir/reassembly.cpp.o.d"
  "CMakeFiles/dyncdn_analysis.dir/timeline.cpp.o"
  "CMakeFiles/dyncdn_analysis.dir/timeline.cpp.o.d"
  "libdyncdn_analysis.a"
  "libdyncdn_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dyncdn_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
