// Process-wide memory accounting for the campaign pipeline.
//
// Two complementary views:
//
//   * Allocation tracker — global operator new/delete replacements
//     (compiled when DYNCDN_MEM_TRACK=1, the default) maintain atomic
//     live-bytes / peak-live-bytes / allocation counters. Byte sizes come
//     from malloc_usable_size, so the numbers reflect what the allocator
//     actually holds, not what was requested. reset_peak_live_bytes()
//     rebases the high-water mark to the current live size, which lets a
//     bench isolate the peak of one phase (e.g. one campaign) inside a
//     long-lived process where RSS is monotonic.
//
//   * OS view — peak/current RSS from getrusage / /proc, for whole-process
//     reporting in BENCH.json.
//
// The tracker is process-global and thread-safe (relaxed atomics); its
// numbers are NOT deterministic across thread counts (allocation
// interleaving moves the peak), so they belong in bench reports and CLI
// summaries — never in the merged experiment registries whose exports are
// compared byte-identical across thread counts. For deterministic
// accounting of the dominant campaign consumers, see
// capture::PacketTrace::retained_bytes() and
// analysis::StreamingAnalyzer::peak_live_bytes(), surfaced through
// testbed::Scenario::collect_memory_metrics().
#pragma once

#include <cstdint>

namespace dyncdn::obs {

struct MemorySnapshot {
  std::uint64_t live_bytes = 0;       // currently allocated via new
  std::uint64_t peak_live_bytes = 0;  // high-water mark since last reset
  std::uint64_t allocations = 0;      // cumulative operator-new calls
  std::uint64_t frees = 0;            // cumulative operator-delete calls
};

/// Current tracker counters. All zeros when tracking is compiled out.
MemorySnapshot memory_snapshot();

/// Rebase the live-bytes high-water mark to the current live size.
void reset_peak_live_bytes();

/// True when the allocation tracker was compiled in (DYNCDN_MEM_TRACK=1).
bool memory_tracking_enabled();

/// Process peak resident set size (VmHWM), bytes. 0 if unavailable.
std::uint64_t peak_rss_bytes();

/// Process current resident set size, bytes. 0 if unavailable.
std::uint64_t current_rss_bytes();

}  // namespace dyncdn::obs
