#include "cdn/deployment.hpp"

namespace dyncdn::cdn {

namespace {
/// Shared TCP settings: 2011-era initial windows. The internal (FE<->BE)
/// receive window is deliberately modest: it fixes the paper's constant C
/// (round trips to deliver the dynamic body) at roughly
/// 1 + body/window ≈ 3-4, giving the linear distance scaling of Fig. 9.
tcp::TcpConfig make_client_tcp() {
  tcp::TcpConfig c;
  c.initial_cwnd_segments = 4;
  return c;
}

tcp::TcpConfig make_internal_tcp() {
  tcp::TcpConfig c;
  c.initial_cwnd_segments = 4;
  // 3-MSS receive window on the internal path: the dynamic body (~17KB)
  // takes ceil(17/4.3) = 4 window rounds plus the request trip, so
  // C ≈ 5 round trips — reproducing the paper's fitted slope of
  // ~0.08-0.1 ms/mile (C = slope * 124/2 ≈ 5-6).
  c.receive_buffer = 3 * c.mss;
  return c;
}
}  // namespace

ServiceProfile google_like_profile() {
  ServiceProfile p;
  p.name = "GoogleLike";

  // Dedicated FE fleet: low and stable service time.
  p.fe_service.median_ms = 30.0;
  p.fe_service.sigma = 0.10;
  p.fe_service.load_mean = 1.0;
  p.fe_service.load_amplitude = 0.05;
  p.fe_service.load_period_s = 180.0;
  p.fe_service.congestion_per_active = 0.002;

  // Fast, stable BE processing (the paper's fitted intercept: ~34 ms).
  p.processing.base_ms = 26.0;
  p.processing.per_word_ms = 3.0;
  p.processing.load.sigma = 0.08;
  p.processing.load.load_mean = 1.0;
  p.processing.load.load_amplitude = 0.04;
  p.processing.load.load_period_s = 240.0;
  p.processing.load.congestion_per_active = 0.001;
  p.processing.result_cache_top_rank = 3;  // hottest queries come cheap
  p.processing.cached_factor = 0.45;

  // Sparse FE placement: roughly a quarter of metros host a Google FE, so
  // many clients reach an FE one metro over (Fig. 6: only ~60% of nodes
  // see <20ms RTT).
  p.fe_metro_coverage = 0.25;
  p.last_mile_min_ms = 2.0;
  p.last_mile_max_ms = 9.0;

  // Lenoir, North Carolina data center (the paper's Fig. 9 choice).
  p.be_location = {35.91, -81.54};
  p.be_site_name = "lenoir-nc";

  p.client_tcp = make_client_tcp();
  p.internal_tcp = make_internal_tcp();
  return p;
}

ServiceProfile bing_like_profile() {
  ServiceProfile p;
  p.name = "BingLike";

  // Shared (Akamai) FE hosts: higher and far more variable service time —
  // the paper's speculated cause of Bing's elevated T_static.
  p.fe_service.median_ms = 110.0;
  p.fe_service.sigma = 0.35;
  p.fe_service.load_mean = 1.05;
  p.fe_service.load_amplitude = 0.35;
  p.fe_service.load_period_s = 90.0;
  p.fe_service.congestion_per_active = 0.01;

  // Slow, variable BE processing (fitted intercept: ~260 ms).
  p.processing.base_ms = 235.0;
  p.processing.per_word_ms = 10.0;
  p.processing.load.sigma = 0.20;
  p.processing.load.load_mean = 1.0;
  p.processing.load.load_amplitude = 0.15;
  p.processing.load.load_period_s = 120.0;
  p.processing.load.congestion_per_active = 0.004;
  p.processing.result_cache_top_rank = 3;
  p.processing.cached_factor = 0.45;

  // Akamai: an FE in (almost) every metro, hence the paper's Fig. 6
  // finding that >80% of PlanetLab nodes see <20ms RTT to a Bing FE (the
  // remainder is access-network latency, not FE distance).
  p.fe_metro_coverage = 1.0;
  p.last_mile_min_ms = 2.0;
  p.last_mile_max_ms = 9.0;

  // A single distant data center in Virginia (the paper's Fig. 9 choice).
  p.be_location = {38.75, -77.48};
  p.be_site_name = "virginia";

  // The FE<->BE path rides the public internet rather than a private
  // backbone: slightly lossy and less provisioned.
  p.fe_be_bandwidth_bps = 400e6;
  p.fe_be_loss = 0.0005;

  p.client_tcp = make_client_tcp();
  p.internal_tcp = make_internal_tcp();
  return p;
}

}  // namespace dyncdn::cdn
