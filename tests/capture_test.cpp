// Capture (tcpdump-like tracing) tests.
#include <gtest/gtest.h>

#include "capture/recorder.hpp"
#include "capture/trace.hpp"
#include "harness.hpp"
#include "tcp/stack.hpp"

namespace dyncdn::capture {
namespace {

using dyncdn::testing::pattern_text;
using dyncdn::testing::TwoNodeHarness;
using dyncdn::testing::TwoNodeOptions;

constexpr net::Port kPort = 80;

struct CaptureFixture {
  explicit CaptureFixture(RecorderOptions ro = {},
                          TwoNodeOptions opt = {})
      : h(opt),
        client_rec(*h.client_node, h.simulator, ro),
        server_rec(*h.server_node, h.simulator, ro) {
    h.server->listen(kPort, [this](tcp::TcpSocket& s) {
      tcp::TcpSocket::Callbacks cb;
      cb.on_data = [&s](net::PayloadRef d) {
        s.send_text("resp:" + d.to_text());
      };
      s.set_callbacks(std::move(cb));
    });
  }

  void run_one_exchange(const std::string& msg) {
    tcp::TcpSocket& s = h.client->connect({h.server_node->id(), kPort}, {});
    s.send_text(msg);
    h.simulator.run();
  }

  TwoNodeHarness h;
  TraceRecorder client_rec;
  TraceRecorder server_rec;
};

TEST(Recorder, CapturesBothDirections) {
  CaptureFixture f;
  f.run_one_exchange("hello");
  const PacketTrace& trace = f.client_rec.trace();
  ASSERT_FALSE(trace.empty());

  std::size_t sent = 0, received = 0;
  for (const auto& r : trace.records()) {
    (r.direction == Direction::kSent ? sent : received) += 1;
  }
  EXPECT_GT(sent, 0u);
  EXPECT_GT(received, 0u);
  // Handshake: SYN out, SYN-ACK in.
  EXPECT_TRUE(trace.records()[0].tcp.flags.syn);
  EXPECT_EQ(trace.records()[0].direction, Direction::kSent);
}

TEST(Recorder, TimestampsAreMonotone) {
  CaptureFixture f;
  f.run_one_exchange("hello");
  const auto& records = f.client_rec.trace().records();
  for (std::size_t i = 1; i < records.size(); ++i) {
    EXPECT_GE(records[i].timestamp, records[i - 1].timestamp);
  }
}

TEST(Recorder, PayloadRetentionFollowsOption) {
  RecorderOptions with;
  with.capture_payloads = true;
  CaptureFixture f(with);
  f.run_one_exchange("payload-bytes");
  bool found = false;
  for (const auto& r : f.client_rec.trace().records()) {
    if (r.direction == Direction::kSent && r.payload_size > 0) {
      EXPECT_FALSE(r.payload.empty());
      EXPECT_NE(r.payload.to_text().find("payload-bytes"),
                std::string::npos);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Recorder, HeadersOnlyModeKeepsSizesButNotBytes) {
  RecorderOptions without;
  without.capture_payloads = false;
  CaptureFixture f(without);
  f.run_one_exchange("payload-bytes");
  bool saw_data = false;
  for (const auto& r : f.client_rec.trace().records()) {
    if (r.payload_size > 0) {
      saw_data = true;
      EXPECT_TRUE(r.payload.empty());
    }
  }
  EXPECT_TRUE(saw_data);
}

TEST(Recorder, PauseSuppressesRecording) {
  CaptureFixture f;
  f.client_rec.pause();
  f.run_one_exchange("quiet");
  EXPECT_TRUE(f.client_rec.trace().empty());
  f.client_rec.resume();
  f.run_one_exchange("loud");
  EXPECT_FALSE(f.client_rec.trace().empty());
}

TEST(Recorder, ClearDropsHistory) {
  CaptureFixture f;
  f.run_one_exchange("one");
  EXPECT_FALSE(f.client_rec.trace().empty());
  f.client_rec.clear();
  EXPECT_TRUE(f.client_rec.trace().empty());
}

TEST(Trace, FilterFlowSelectsOneConnection) {
  CaptureFixture f;
  f.run_one_exchange("first");
  f.run_one_exchange("second");
  const PacketTrace& trace = f.client_rec.trace();
  const auto flows = trace.flows();
  ASSERT_EQ(flows.size(), 2u);
  const PacketTrace one = trace.filter_flow(flows[0]);
  EXPECT_GT(one.size(), 0u);
  EXPECT_LT(one.size(), trace.size());
  for (const auto& r : one.records()) {
    const net::FlowId f2 = r.flow_at_capture_node();
    EXPECT_TRUE(f2 == flows[0] || f2 == flows[0].reversed());
  }
}

TEST(Trace, FilterRemotePort) {
  CaptureFixture f;
  f.run_one_exchange("x");
  const PacketTrace& trace = f.client_rec.trace();
  EXPECT_EQ(trace.filter_remote_port(kPort).size(), trace.size());
  EXPECT_EQ(trace.filter_remote_port(1234).size(), 0u);
}

TEST(Trace, FlowAtCaptureNodePutsLocalFirst) {
  CaptureFixture f;
  f.run_one_exchange("x");
  for (const auto& r : f.client_rec.trace().records()) {
    EXPECT_EQ(r.flow_at_capture_node().local.node,
              f.h.client_node->id());
  }
  for (const auto& r : f.server_rec.trace().records()) {
    EXPECT_EQ(r.flow_at_capture_node().local.node,
              f.h.server_node->id());
  }
}

TEST(Trace, ToTextRendersRecords) {
  CaptureFixture f;
  f.run_one_exchange("x");
  const std::string text = f.client_rec.trace().to_text();
  EXPECT_NE(text.find("SYN"), std::string::npos);
  EXPECT_NE(text.find("snd"), std::string::npos);
  EXPECT_NE(text.find("rcv"), std::string::npos);
}

TEST(Trace, SymmetricViewsAgreeOnPacketCounts) {
  // No loss: everything the client sends, the server receives.
  CaptureFixture f;
  f.run_one_exchange("count-check");
  std::size_t client_sent = 0, server_received = 0;
  for (const auto& r : f.client_rec.trace().records()) {
    if (r.direction == Direction::kSent) ++client_sent;
  }
  for (const auto& r : f.server_rec.trace().records()) {
    if (r.direction == Direction::kReceived) ++server_received;
  }
  EXPECT_EQ(client_sent, server_received);
}

}  // namespace
}  // namespace dyncdn::capture
