// Unit tests for the hot-path memory subsystem (src/mem/): SlabPool /
// TypedSlab block recycling, Arena bump allocation and reset, FlatMap
// open-addressing semantics and determinism — plus, under ASan builds,
// death tests proving that use-after-release of slab/arena memory faults
// (the free lists are poisoned, so stale pointers behave like a heap
// use-after-free instead of silently reading recycled state).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "mem/arena.hpp"
#include "mem/flat_table.hpp"
#include "mem/slab.hpp"

namespace dyncdn::mem {
namespace {

TEST(SlabPool, RecyclesBlocksLifo) {
  SlabPool pool(32, /*blocks_per_chunk=*/4);
  void* a = pool.allocate();
  void* b = pool.allocate();
  EXPECT_NE(a, b);
  pool.deallocate(b);
  pool.deallocate(a);
  // LIFO free list: the most recently released block comes back first.
  EXPECT_EQ(pool.allocate(), a);
  EXPECT_EQ(pool.allocate(), b);
  pool.deallocate(a);
  pool.deallocate(b);
}

TEST(SlabPool, HandsOutAscendingAddressesWithinAChunk) {
  SlabPool pool(64, /*blocks_per_chunk=*/8);
  void* prev = pool.allocate();
  std::vector<void*> owned{prev};
  for (int i = 1; i < 8; ++i) {
    void* p = pool.allocate();
    EXPECT_LT(prev, p);
    EXPECT_EQ(static_cast<std::byte*>(p) - static_cast<std::byte*>(prev),
              static_cast<std::ptrdiff_t>(pool.block_size()));
    prev = p;
    owned.push_back(p);
  }
  EXPECT_EQ(pool.chunk_count(), 1u);
  void* ninth = pool.allocate();  // forces a second chunk
  owned.push_back(ninth);
  EXPECT_EQ(pool.chunk_count(), 2u);
  for (void* p : owned) {
    EXPECT_TRUE(pool.owns(p));
    pool.deallocate(p);
  }
}

TEST(SlabPool, RoundsBlockSizeUpToMaxAlign) {
  SlabPool pool(1);
  EXPECT_GE(pool.block_size(), alignof(std::max_align_t));
  EXPECT_EQ(pool.block_size() % alignof(std::max_align_t), 0u);
}

TEST(TypedSlab, RunsConstructorAndDestructor) {
  struct Probe {
    explicit Probe(int* counter) : counter_(counter) { ++*counter_; }
    ~Probe() { --*counter_; }
    int* counter_;
  };
  int live = 0;
  TypedSlab<Probe> slab(/*blocks_per_chunk=*/4);
  Probe* a = slab.create(&live);
  Probe* b = slab.create(&live);
  EXPECT_EQ(live, 2);
  slab.destroy(a);
  EXPECT_EQ(live, 1);
  slab.destroy(b);
  EXPECT_EQ(live, 0);
  slab.destroy(nullptr);  // no-op
  // The released blocks are back on the free list for reuse.
  EXPECT_EQ(slab.free_count(), 4u);
}

TEST(Arena, AllocationsAreAlignedAndDisjoint) {
  Arena arena(/*chunk_bytes=*/512);
  auto* a = static_cast<std::byte*>(arena.allocate(100));
  auto* b = static_cast<std::byte*>(arena.allocate(100));
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a) % alignof(std::max_align_t),
            0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % alignof(std::max_align_t),
            0u);
  EXPECT_TRUE(b >= a + 100 || a >= b + 100);
  std::memset(a, 0xAA, 100);
  std::memset(b, 0xBB, 100);
  EXPECT_EQ(a[99], std::byte{0xAA});  // neighbours don't overlap
  EXPECT_EQ(arena.bytes_allocated(), 200u);
}

TEST(Arena, CopyPreservesBytesAndAcceptsEmpty) {
  Arena arena;
  const std::string src = "boundary probe pending bytes";
  const void* copied = arena.copy(src.data(), src.size());
  EXPECT_EQ(std::memcmp(copied, src.data(), src.size()), 0);
  EXPECT_NE(arena.copy(nullptr, 0), nullptr);  // zero-size copy is valid
}

TEST(Arena, ResetRetainsChunkStorage) {
  Arena arena(/*chunk_bytes=*/256);
  for (int i = 0; i < 64; ++i) arena.allocate(64);
  const std::size_t chunks = arena.chunk_count();
  EXPECT_GT(chunks, 1u);
  arena.reset();
  EXPECT_EQ(arena.bytes_allocated(), 0u);
  // A second identical cycle reuses the retained chunks: no growth.
  for (int i = 0; i < 64; ++i) arena.allocate(64);
  EXPECT_EQ(arena.chunk_count(), chunks);
}

TEST(Arena, OversizedRequestGetsDedicatedChunk) {
  Arena arena(/*chunk_bytes=*/256);
  auto* big = static_cast<std::byte*>(arena.allocate(10000));
  std::memset(big, 0x5A, 10000);  // the whole span must be addressable
  EXPECT_EQ(big[9999], std::byte{0x5A});
}

TEST(FlatMap, InsertFindErase) {
  FlatMap<std::uint64_t, int> map;
  EXPECT_EQ(map.find(7), nullptr);
  auto [v, inserted] = map.try_emplace(7, 70);
  EXPECT_TRUE(inserted);
  EXPECT_EQ(*v, 70);
  auto [v2, inserted2] = map.try_emplace(7, 99);
  EXPECT_FALSE(inserted2);
  EXPECT_EQ(*v2, 70);  // existing value untouched
  EXPECT_EQ(map.size(), 1u);
  EXPECT_TRUE(map.erase(7));
  EXPECT_FALSE(map.erase(7));
  EXPECT_EQ(map.find(7), nullptr);
  EXPECT_TRUE(map.empty());
}

TEST(FlatMap, SurvivesRehashAndTombstoneChurn) {
  FlatMap<std::uint64_t, std::uint64_t> map;
  // Insert/erase churn forces both growth rehashes and tombstone reuse.
  for (std::uint64_t i = 0; i < 1000; ++i) {
    map.try_emplace(i, i * 3);
    if (i % 3 == 0) map.erase(i / 2);
  }
  std::size_t expected = 0;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    // Key i was erased iff some j % 3 == 0 with j / 2 == i ran, i.e. one
    // of {2i, 2i+1} is divisible by 3 and lies inside the loop range.
    const bool gone = ((2 * i) % 3 == 0 && 2 * i < 1000) ||
                      ((2 * i + 1) % 3 == 0 && 2 * i + 1 < 1000);
    const std::uint64_t* v = map.find(i);
    if (gone) {
      EXPECT_EQ(v, nullptr) << "key " << i;
    } else {
      ASSERT_NE(v, nullptr) << "key " << i;
      EXPECT_EQ(*v, i * 3);
      ++expected;
    }
  }
  EXPECT_EQ(map.size(), expected);
}

TEST(FlatMap, IdenticalOperationHistoryYieldsIdenticalIteration) {
  // Determinism contract: no per-process salt, so two maps fed the same
  // operations traverse in the same slot order. PDES replay relies on this.
  const auto build = [] {
    FlatMap<std::uint64_t, int> m;
    for (std::uint64_t i = 0; i < 200; ++i) m.try_emplace(i * 7919, 1);
    for (std::uint64_t i = 0; i < 200; i += 3) m.erase(i * 7919);
    std::vector<std::uint64_t> order;
    m.for_each([&order](std::uint64_t k, int) { order.push_back(k); });
    return order;
  };
  EXPECT_EQ(build(), build());
}

#if DYNCDN_MEM_ASAN
// Use-after-release must fault, not silently read recycled memory. Death
// tests fork, so the ASan report in the child is the expected "death".
TEST(SlabPoolDeathTest, UseAfterReleaseFaultsUnderAsan) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        SlabPool pool(64);
        auto* p = static_cast<volatile std::uint64_t*>(pool.allocate());
        *p = 42;
        pool.deallocate(const_cast<std::uint64_t*>(p));
        (void)*p;  // poisoned: ASan aborts here
      },
      "use-after-poison");
}

TEST(ArenaDeathTest, UseAfterResetFaultsUnderAsan) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Arena arena;
        auto* p = static_cast<volatile std::uint64_t*>(arena.allocate(8));
        *p = 42;
        arena.reset();
        (void)*p;  // previous cycle's bytes are poisoned
      },
      "use-after-poison");
}
#endif  // DYNCDN_MEM_ASAN

}  // namespace
}  // namespace dyncdn::mem
