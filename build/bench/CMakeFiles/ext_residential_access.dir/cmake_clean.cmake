file(REMOVE_RECURSE
  "CMakeFiles/ext_residential_access.dir/ext_residential_access.cpp.o"
  "CMakeFiles/ext_residential_access.dir/ext_residential_access.cpp.o.d"
  "ext_residential_access"
  "ext_residential_access.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_residential_access.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
