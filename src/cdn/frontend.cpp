#include "cdn/frontend.hpp"

#include <algorithm>
#include <charconv>
#include <utility>

#include "http/message.hpp"
#include "obs/obs.hpp"

#if DYNCDN_OBS
namespace {

// Parse an X-Trace-Span/X-Query-Id-style decimal header value; 0 when
// absent or malformed.
std::uint64_t parse_id_header(const std::optional<std::string_view>& v) {
  std::uint64_t id = 0;
  if (v) std::from_chars(v->data(), v->data() + v->size(), id);
  return id;
}

}  // namespace
#endif

namespace dyncdn::cdn {

FrontEndServer::FrontEndServer(net::Node& node,
                               const search::ContentModel& content,
                               Config config)
    : node_(node),
      content_(content),
      config_(std::move(config)),
      stack_(node, config_.client_tcp),
      service_rng_(node.simulator().rng().stream(
          "fe/" + config_.name + "/service")) {
  stack_.listen(config_.client_port,
                [this](tcp::TcpSocket& s) { accept_client(s); });
  // Open (and optionally warm) the first pool connection eagerly so the
  // very first query does not pay the handshake.
  open_backend_conn(config_.warm_backend_connection);
}

bool FrontEndServer::backend_connected() const {
  return std::any_of(be_pool_.begin(), be_pool_.end(),
                     [](const auto& c) { return c->connected; });
}

// ---------------------------------------------------------------------------
// Backend connection pool (persistent, multiplexed one-query-per-conn)
// ---------------------------------------------------------------------------

FrontEndServer::BackendConn* FrontEndServer::idle_backend_conn() {
  for (const auto& conn : be_pool_) {
    if (conn->in_flight_query == 0) return conn.get();
  }
  return nullptr;
}

FrontEndServer::BackendConn& FrontEndServer::open_backend_conn(bool warm) {
  auto owned = std::make_unique<BackendConn>();
  BackendConn& conn = *owned;
  be_pool_.push_back(std::move(owned));
  be_pool_peak_ = std::max(be_pool_peak_, be_pool_.size());
  conn.alive = std::make_shared<bool>(true);
  auto alive = conn.alive;
  BackendConn* conn_ptr = &conn;

  http::ResponseParser::Callbacks pc;
  pc.on_headers = [this, conn_ptr](const http::HttpResponse& resp,
                                   std::optional<std::size_t>) {
    conn_ptr->response_id = 0;
    conn_ptr->response_is_warmup = resp.header("X-Warmup").has_value();
    if (const auto id = resp.header("X-Query-Id")) {
      std::from_chars(id->data(), id->data() + id->size(),
                      conn_ptr->response_id);
    }
    auto it = pending_.find(conn_ptr->response_id);
    if (it != pending_.end()) {
      fetch_log_[it->second.log_index].first_byte =
          node_.simulator().now();
#if DYNCDN_OBS
      if (obs::TraceSession* trace =
              obs::active_trace(node_.simulator())) {
        trace->add_event(it->second.fetch_span, "first_byte",
                         node_.simulator().now());
      }
#endif
    }
  };
  pc.on_body_data = [this, conn_ptr](std::string_view chunk) {
    if (conn_ptr->response_is_warmup) return;
    auto it = pending_.find(conn_ptr->response_id);
    if (it == pending_.end()) return;
    ClientCtx& ctx = *it->second.ctx;
    if (config_.relay_mode == RelayMode::kStoreAndForward ||
        config_.cache_results) {
      ctx.buffered.append(chunk);
    }
    if (config_.relay_mode == RelayMode::kStreaming && ctx.alive) {
      if (!config_.serve_static_immediately) {
        // Deferred-static ablation: emit head+static before the first
        // dynamic byte reaches the client.
        send_head_and_static(ctx);
      }
      ctx.socket->send_text(chunk);
    }
  };
  pc.on_complete = [this, conn_ptr](const http::HttpResponse&) {
    if (conn_ptr->response_is_warmup) {
      conn_ptr->in_flight_query = 0;
    } else {
      auto it = pending_.find(conn_ptr->response_id);
      conn_ptr->in_flight_query = 0;
      if (it != pending_.end()) {
        Pending pending = std::move(it->second);
        pending_.erase(it);

        fetch_log_[pending.log_index].last_byte =
            node_.simulator().now();
        ClientCtx& ctx = *pending.ctx;

        if (config_.cache_results) {
          result_cache_[pending.cache_key] = ctx.buffered;
        }
        if (ctx.alive) {
          if (config_.relay_mode == RelayMode::kStoreAndForward) {
            if (!config_.serve_static_immediately) send_head_and_static(ctx);
            ctx.socket->send_text(ctx.buffered);
          }
          ctx.socket->close();
        }
#if DYNCDN_OBS
        if (obs::TraceSession* trace =
                obs::active_trace(node_.simulator())) {
          const sim::SimTime now = node_.simulator().now();
          trace->end_span(pending.fetch_span, now);
          // The FE's part in the query ends once the relay is queued.
          trace->end_span(ctx.span, now);
        }
#endif
      }
    }
    // This connection is free again: drain one queued fetch, if any.
    if (!fetch_queue_.empty()) {
      const std::uint64_t next = fetch_queue_.front();
      fetch_queue_.erase(fetch_queue_.begin());
      dispatch_fetch(next);
    }
  };
  conn.parser = std::make_unique<http::ResponseParser>(std::move(pc));

  tcp::TcpSocket::Callbacks cb;
  cb.on_connected = [this, conn_ptr, alive, warm] {
    if (!*alive) return;
    conn_ptr->connected = true;
    if (warm) {
      http::HttpRequest warm_req;
      warm_req.target =
          "/warmup?bytes=" + std::to_string(config_.warmup_bytes);
      warm_req.set_header("X-Query-Id", "0");
      conn_ptr->socket->send_text(warm_req.serialize());
    }
  };
  cb.on_data = [this, conn_ptr, alive](net::PayloadRef d) {
    if (!*alive) return;
    try {
      d.for_each_slice([&conn_ptr](std::span<const std::uint8_t> s) {
        conn_ptr->parser->feed(std::string_view(
            reinterpret_cast<const char*>(s.data()), s.size()));
      });
    } catch (const std::exception&) {
      // Corrupt BE response stream: drop the connection; in-flight fetch
      // fails over via backend_conn_lost.
      conn_ptr->socket->abort();
      backend_conn_lost(*conn_ptr);
    }
  };
  cb.on_closed = [this, conn_ptr, alive] {
    if (!*alive) return;
    backend_conn_lost(*conn_ptr);
  };
  conn.socket = &stack_.connect(config_.backend, std::move(cb),
                                config_.backend_tcp);
  if (warm) {
    // The warm-up transfer occupies the connection until it completes.
    conn.in_flight_query = ~0ULL;
  }
  return conn;
}

void FrontEndServer::backend_conn_lost(BackendConn& conn) {
  *conn.alive = false;

  // The in-flight fetch on this connection (if any) is unanswerable; tear
  // the client connection down so the client observes a failure.
  if (conn.in_flight_query != 0 && conn.in_flight_query != ~0ULL) {
    auto it = pending_.find(conn.in_flight_query);
    if (it != pending_.end()) {
      if (it->second.ctx->alive) it->second.ctx->socket->abort();
#if DYNCDN_OBS
      if (obs::TraceSession* trace =
              obs::active_trace(node_.simulator())) {
        const sim::SimTime now = node_.simulator().now();
        trace->add_arg(it->second.fetch_span, "failed",
                       obs::ArgValue::of(std::int64_t{1}));
        trace->end_span(it->second.fetch_span, now);
        trace->end_span(it->second.ctx->span, now);
      }
#endif
      pending_.erase(it);
    }
  }
  const auto pool_it = std::find_if(
      be_pool_.begin(), be_pool_.end(),
      [&conn](const auto& c) { return c.get() == &conn; });
  if (pool_it != be_pool_.end()) be_pool_.erase(pool_it);

  // Keep queued fetches moving on a fresh connection.
  if (!fetch_queue_.empty()) {
    const std::uint64_t next = fetch_queue_.front();
    fetch_queue_.erase(fetch_queue_.begin());
    dispatch_fetch(next);
  }
}

// ---------------------------------------------------------------------------
// Client side
// ---------------------------------------------------------------------------

void FrontEndServer::accept_client(tcp::TcpSocket& socket) {
  auto ctx = std::make_shared<ClientCtx>();
  ctx->socket = &socket;

  auto parser = std::make_shared<http::RequestParser>(
      [this, ctx](http::HttpRequest req) {
        handle_request(ctx, std::move(req));
      });

  tcp::TcpSocket::Callbacks cb;
  cb.on_data = [ctx, parser](net::PayloadRef d) {
    try {
      d.for_each_slice([&parser](std::span<const std::uint8_t> s) {
        parser->feed(std::string_view(
            reinterpret_cast<const char*>(s.data()), s.size()));
      });
    } catch (const std::exception&) {
      // Malformed request: reset the connection, never crash the server.
      if (ctx->alive) ctx->socket->abort();
    }
  };
  cb.on_closed = [ctx] { ctx->alive = false; };
  socket.set_callbacks(std::move(cb));
}

void FrontEndServer::send_head_and_static(ClientCtx& ctx) {
  if (!ctx.alive) return;
  // Static-portion cache: the first serve primes the prefix into the FE
  // cache as a wire buffer, every later serve hits it and sends the same
  // buffer zero-copy. The bytes sent are identical either way (the prefix
  // ships with the FE deployment, so the sim charges no miss penalty).
  if (static_prefix_primed_) {
    ++static_cache_hits_;
  } else {
    static_prefix_primed_ = true;
    static_prefix_buf_ = net::make_buffer(content_.static_prefix());
  }
  http::HttpResponse head;
  // Service-level constant headers only: the response head is part of the
  // static portion the analyzer discovers by cross-query (and cross-FE)
  // common-prefix comparison, so nothing FE- or query-specific goes here.
  head.set_header("Server", content_.service_name());
  head.set_header("Connection", "close");
  const std::string head_text = head.serialize_head();
#if DYNCDN_OBS
  if (obs::TraceSession* trace =
          obs::active_trace(node_.simulator())) {
    // Role 1 of the paper: the static flush leaves the FE here; the
    // client-side t3/t4 stamps are its arrival as seen by the tcp.flow
    // span's rx events. `bytes` is the wire size of the static portion
    // (head + cached prefix) — the same byte count the analyzer discovers
    // as the static/dynamic boundary, recorded so an offline span trace is
    // attributable without a packet capture (trace_inspect attribution).
    trace->add_event(
        ctx.span, "static_flush", node_.simulator().now(),
        {obs::Arg{"bytes",
                  obs::ArgValue::of(static_cast<std::int64_t>(
                      head_text.size() + static_prefix_buf_->size()))}});
  }
#endif
  // Close-framed response: the dynamic size is unknown at this point, which
  // is exactly why the FE can start sending before the BE answers.
  ctx.socket->send_text(head_text);
  ctx.socket->send(
      net::PayloadRef{static_prefix_buf_, 0, static_prefix_buf_->size()});
}

void FrontEndServer::handle_request(std::shared_ptr<ClientCtx> ctx,
                                    http::HttpRequest req) {
  ++queries_handled_;
  sim::Simulator& simulator = node_.simulator();
  const sim::SimTime service_delay = config_.service.draw(
      service_rng_, simulator.now(), active_requests_);
  ++active_requests_;
  active_requests_peak_ = std::max(active_requests_peak_, active_requests_);

#if DYNCDN_OBS
  obs::SpanId service_span = obs::kNoSpan;
  if (obs::TraceSession* trace = obs::active_trace(simulator)) {
    // Cross-node parenting: the client put its query-span id in the
    // request; our whole request span hangs under it.
    ctx->span = trace->begin_span(simulator.now(), "fe.request", "fe",
                                  parse_id_header(req.header("X-Trace-Span")));
    trace->add_arg(ctx->span, "fe", obs::ArgValue::of(config_.name));
    trace->add_arg(ctx->span, "target", obs::ArgValue::of(req.target));
    service_span = trace->begin_span(simulator.now(), "fe.service", "fe",
                                     ctx->span);
  }
#endif

  simulator.schedule_in(
      service_delay,
      [this, ctx,
#if DYNCDN_OBS
       service_span,
#endif
       target = req.target]() {
        --active_requests_;
#if DYNCDN_OBS
        if (obs::TraceSession* trace =
                obs::active_trace(node_.simulator())) {
          trace->end_span(service_span, node_.simulator().now());
        }
#endif
        if (!ctx->alive) return;

        // FE result cache (counterfactual; off per the paper's finding).
        if (config_.cache_results) {
          const auto hit = result_cache_.find(target);
          if (hit != result_cache_.end()) {
            ++cache_hits_;
            send_head_and_static(*ctx);
            ctx->socket->send_text(hit->second);
            ctx->socket->close();
            FetchRecord rec;
            rec.query_id = 0;
            rec.target = target;
            rec.served_from_fe_cache = true;
            const sim::SimTime now = node_.simulator().now();
            rec.fetch_start = rec.first_byte = rec.last_byte = now;
            fetch_log_.push_back(std::move(rec));
#if DYNCDN_OBS
            if (obs::TraceSession* trace =
                    obs::active_trace(node_.simulator())) {
              trace->add_arg(ctx->span, "cache_hit",
                             obs::ArgValue::of(std::int64_t{1}));
              trace->end_span(ctx->span, now);
            }
#endif
            return;
          }
        }

        // Role 2: forward the query to the BE *now* so fetching overlaps
        // the static-portion delivery, then (role 1) serve the cached
        // static prefix immediately.
        begin_fetch(ctx, target);
        if (config_.serve_static_immediately) send_head_and_static(*ctx);
      });
}

void FrontEndServer::begin_fetch(std::shared_ptr<ClientCtx> ctx,
                                 const std::string& target) {
  const std::uint64_t id = next_query_id_++;

  FetchRecord rec;
  rec.query_id = id;
  rec.target = target;
  rec.fetch_start = node_.simulator().now();
  fetch_log_.push_back(rec);

  Pending pending;
  pending.ctx = std::move(ctx);
  pending.log_index = fetch_log_.size() - 1;
  pending.cache_key = target;
  pending.target = target;
#if DYNCDN_OBS
  if (obs::TraceSession* trace =
          obs::active_trace(node_.simulator())) {
    pending.fetch_span =
        trace->begin_span(node_.simulator().now(), "fe.fetch",
                          "fe", pending.ctx->span);
    trace->add_arg(pending.fetch_span, "query_id",
                   obs::ArgValue::of(static_cast<std::int64_t>(id)));
  }
#endif
  pending_.emplace(id, std::move(pending));

  dispatch_fetch(id);
}

void FrontEndServer::dispatch_fetch(std::uint64_t query_id) {
  auto it = pending_.find(query_id);
  if (it == pending_.end()) return;  // client died while queued

  BackendConn* conn = idle_backend_conn();
  if (conn == nullptr) {
    if (config_.max_backend_connections == 0 ||
        be_pool_.size() < config_.max_backend_connections) {
      // Grow the pool. New connections skip warm-up: with the window-
      // limited internal path, the handshake is the only cold cost, and
      // it is paid while the static portion is still being delivered.
      conn = &open_backend_conn(/*warm=*/false);
    } else {
      fetch_queue_.push_back(query_id);
      fetch_queue_peak_ = std::max(fetch_queue_peak_, fetch_queue_.size());
      return;
    }
  }

  conn->in_flight_query = query_id;
  http::HttpRequest fetch;
  fetch.target = it->second.target;
  fetch.set_header("X-Query-Id", std::to_string(query_id));
#if DYNCDN_OBS
  if (it->second.fetch_span != 0) {
    fetch.set_header("X-Trace-Span", obs::span_id_header(it->second.fetch_span));
  }
#endif
  conn->socket->send_text(fetch.serialize());
}

}  // namespace dyncdn::cdn
