# Empty dependencies file for sec41_threshold.
# This may be replaced when dependencies are built.
