// Property suites for the inference framework on live simulations: the
// paper's model predictions must hold across deployment profiles, seeds
// and operating conditions — not just on the single calibrated default.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "core/inference.hpp"
#include "search/keywords.hpp"
#include "stats/regression.hpp"
#include "testbed/experiment.hpp"
#include "testbed/scenario.hpp"

namespace dyncdn::testbed {
namespace {

using namespace dyncdn::sim::literals;

enum class Profile { kGoogle, kBing };

cdn::ServiceProfile make_profile(Profile p) {
  return p == Profile::kGoogle ? cdn::google_like_profile()
                               : cdn::bing_like_profile();
}

const char* profile_name(Profile p) {
  return p == Profile::kGoogle ? "Google" : "Bing";
}

// ---------------------------------------------------------------------------
// The central invariant: T_delta <= true T_fetch <= T_dynamic, per query.
// ---------------------------------------------------------------------------

class BoundsInvariantSweep
    : public ::testing::TestWithParam<std::tuple<Profile, std::uint64_t>> {};

TEST_P(BoundsInvariantSweep, PerQueryFetchBoundsHold) {
  const auto [profile, seed] = GetParam();
  ScenarioOptions opt;
  opt.profile = make_profile(profile);
  opt.client_count = 1;  // single client: fetch log maps 1:1 onto timings
  opt.seed = seed;
  Scenario scenario(opt);
  scenario.warm_up();

  ExperimentOptions eo;
  eo.reps_per_node = 10;
  eo.interval = 1100_ms;
  search::KeywordCatalog catalog(seed);
  eo.keywords = catalog.figure3_keywords();
  const ExperimentResult r = run_fixed_fe_experiment(scenario, 0, eo);

  const auto& timings = r.per_node_timings.at(0);
  const auto& fetch_log = scenario.fes()[0].server->fetch_log();
  ASSERT_EQ(timings.size(), 10u);
  ASSERT_EQ(fetch_log.size(), r.discovery_fetches + 10u);

  for (std::size_t i = 0; i < timings.size(); ++i) {
    const double truth = fetch_log[r.discovery_fetches + i]
                             .true_fetch_time()
                             .to_milliseconds();
    const core::FetchBounds bounds = core::fetch_bounds(timings[i]);
    // Half-millisecond slack: t4/t5 are packet arrival instants while the
    // fetch log records FE-side byte events.
    EXPECT_LE(bounds.lower_ms, truth + 0.5)
        << profile_name(profile) << " query " << i;
    EXPECT_GE(bounds.upper_ms, truth - 0.5)
        << profile_name(profile) << " query " << i;
    // Structural sanity.
    EXPECT_GE(timings[i].t_dynamic_ms, timings[i].t_static_ms - 0.5);
    EXPECT_GE(timings[i].t_delta_ms, 0.0);
    EXPECT_GT(timings[i].overall_ms, timings[i].t_dynamic_ms);
  }
}

INSTANTIATE_TEST_SUITE_P(
    ProfilesAndSeeds, BoundsInvariantSweep,
    ::testing::Combine(::testing::Values(Profile::kGoogle, Profile::kBing),
                       ::testing::Values<std::uint64_t>(1, 17, 4242)),
    [](const auto& info) {
      return std::string(profile_name(std::get<0>(info.param))) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

// ---------------------------------------------------------------------------
// Model predictions as properties of the per-node aggregates.
// ---------------------------------------------------------------------------

class ModelShapeSweep : public ::testing::TestWithParam<Profile> {};

TEST_P(ModelShapeSweep, StaticIsRttInsensitiveAndDeltaDeclines) {
  ScenarioOptions opt;
  opt.profile = make_profile(GetParam());
  // Keep server-side noise down so the shape assertions are sharp.
  opt.profile.fe_service.sigma = 0.03;
  opt.profile.fe_service.load_amplitude = 0.0;
  opt.profile.processing.load.sigma = 0.03;
  opt.profile.processing.load.load_amplitude = 0.0;
  opt.client_count = 40;
  opt.seed = 77;
  Scenario scenario(opt);
  scenario.warm_up();

  ExperimentOptions eo;
  eo.reps_per_node = 6;
  eo.interval = 1300_ms;
  search::KeywordCatalog catalog(2);
  eo.keywords = {catalog.figure3_keywords().front()};
  const ExperimentResult r = run_fixed_fe_experiment(scenario, 0, eo);

  std::vector<double> rtt, tsta, tdelta;
  for (const auto& n : r.per_node) {
    if (n.samples == 0) continue;
    rtt.push_back(n.rtt_ms);
    tsta.push_back(n.med_static_ms);
    tdelta.push_back(n.med_delta_ms);
  }
  ASSERT_GE(rtt.size(), 30u);

  // T_static: the initial RTT is subtracted by construction; what remains
  // is the residual delivery round for the static tail (the paper's model:
  // "the delivery time for the static content is a function of RTT" — this
  // is also what lets T_delta collapse). Slope must be ~1 delivery round,
  // never compounding.
  const auto static_fit = stats::linear_fit(rtt, tsta);
  EXPECT_GT(static_fit.slope, 0.0) << static_fit.to_string();
  EXPECT_LT(static_fit.slope, 1.3) << static_fit.to_string();

  // T_delta: declines with RTT (negative slope) until collapse.
  std::vector<double> rtt_pre, delta_pre;
  for (std::size_t i = 0; i < rtt.size(); ++i) {
    if (tdelta[i] > 5.0) {
      rtt_pre.push_back(rtt[i]);
      delta_pre.push_back(tdelta[i]);
    }
  }
  if (rtt_pre.size() >= 8) {
    const auto delta_fit = stats::linear_fit(rtt_pre, delta_pre);
    EXPECT_LT(delta_fit.slope, -0.4) << delta_fit.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(Profiles, ModelShapeSweep,
                         ::testing::Values(Profile::kGoogle, Profile::kBing),
                         [](const auto& info) {
                           return profile_name(info.param);
                         });

// ---------------------------------------------------------------------------
// Fetch factoring is stable across seeds.
// ---------------------------------------------------------------------------

class FactoringSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FactoringSweep, InterceptTracksProcessingAcrossSeeds) {
  ScenarioOptions opt;
  opt.profile = cdn::google_like_profile();
  opt.profile.processing.load.sigma = 0.03;
  opt.profile.processing.load.load_amplitude = 0.0;
  opt.profile.fe_service.sigma = 0.03;
  opt.profile.fe_service.load_amplitude = 0.0;
  opt.seed = GetParam();
  opt.fe_distance_sweep_miles =
      std::vector<double>{50, 140, 230, 320, 410, 500};
  Scenario scenario(opt);
  scenario.warm_up();

  const search::Keyword keyword{"stable factoring keyword",
                                search::KeywordClass::kGranular, 5000};
  const FetchFactoringResult r =
      run_fetch_factoring_experiment(scenario, keyword, 8);

  EXPECT_GT(r.factoring.fit.r_squared, 0.85);
  EXPECT_GT(r.factoring.slope_ms_per_mile(), 0.0);
  const double expected_intercept =
      opt.profile.processing.base_for(keyword) +
      opt.profile.fe_service.median_ms;
  EXPECT_NEAR(r.factoring.t_proc_ms(), expected_intercept,
              0.35 * expected_intercept)
      << r.factoring.to_string();
}

INSTANTIATE_TEST_SUITE_P(Seeds, FactoringSweep,
                         ::testing::Values<std::uint64_t>(3, 1234, 98765));

// ---------------------------------------------------------------------------
// The inference survives adverse measurement conditions.
// ---------------------------------------------------------------------------

class AdverseMeasurementSweep
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(AdverseMeasurementSweep, BoundsHoldUnderLossAndReordering) {
  const auto [loss, queue_scale] = GetParam();
  ScenarioOptions opt;
  opt.profile = cdn::google_like_profile();
  opt.client_count = 1;
  opt.seed = 4711;
  opt.client_link_loss = loss;
  opt.profile.client_fe_bandwidth_bps *= queue_scale;
  Scenario scenario(opt);
  scenario.warm_up();

  ExperimentOptions eo;
  eo.reps_per_node = 8;
  eo.interval = 1500_ms;
  search::KeywordCatalog catalog(3);
  eo.keywords = {catalog.figure3_keywords().front()};
  const ExperimentResult r = run_fixed_fe_experiment(scenario, 0, eo);

  // Loss may invalidate some timelines (the paper drops outliers too);
  // every timing that survives must respect the envelope.
  const auto& timings = r.per_node_timings.at(0);
  ASSERT_GE(timings.size(), 4u);
  const auto& fetch_log = scenario.fes()[0].server->fetch_log();
  double max_truth = 0;
  for (std::size_t i = r.discovery_fetches; i < fetch_log.size(); ++i) {
    max_truth = std::max(
        max_truth, fetch_log[i].true_fetch_time().to_milliseconds());
  }
  for (const auto& q : timings) {
    EXPECT_GE(q.t_delta_ms, 0.0);
    EXPECT_LE(q.t_delta_ms, max_truth + 0.5);
    EXPECT_GE(q.t_dynamic_ms, q.t_delta_ms);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Conditions, AdverseMeasurementSweep,
    ::testing::Combine(::testing::Values(0.0, 0.01, 0.03),
                       ::testing::Values(1.0, 0.2)));

}  // namespace
}  // namespace dyncdn::testbed
