#include "analysis/timeline.hpp"

#include <cstdio>

namespace dyncdn::analysis {

std::string QueryTimeline::to_string() const {
  if (!valid) return "invalid timeline: " + invalid_reason;
  char buf[256];
  std::snprintf(
      buf, sizeof(buf),
      "rtt=%.2fms t1=%.2f t2=%.2f t3=%.2f t4=%.2f t5=%.2f te=%.2f "
      "(%zuB, boundary=%zu)",
      rtt().to_milliseconds(), t1.to_milliseconds(), t2.to_milliseconds(),
      t3.to_milliseconds(), t4.to_milliseconds(), t5.to_milliseconds(),
      te.to_milliseconds(), response_bytes, boundary);
  return buf;
}

namespace {

/// Timeline extraction over a trace already reduced to one connection.
QueryTimeline timeline_from_conn(const capture::PacketTrace& conn,
                                 const net::FlowId& flow,
                                 std::size_t boundary) {
  QueryTimeline tl;
  tl.flow = flow;
  tl.boundary = boundary;

  if (conn.empty()) {
    tl.invalid_reason = "no packets for flow";
    return tl;
  }

  // --- control-plane events -----------------------------------------------
  bool saw_syn = false, saw_synack = false, saw_t1 = false, saw_t2 = false;
  std::optional<std::uint64_t> client_iss;
  for (const auto& r : conn.records()) {
    const bool sent = r.direction == capture::Direction::kSent;
    if (sent && r.tcp.flags.syn && !saw_syn) {
      tl.tb = r.timestamp;
      client_iss = r.tcp.seq;
      saw_syn = true;
    } else if (!sent && r.tcp.flags.syn && r.tcp.flags.ack && !saw_synack) {
      tl.t_synack = r.timestamp;
      saw_synack = true;
    } else if (sent && r.payload_size > 0 && !saw_t1) {
      tl.t1 = r.timestamp;  // the GET
      saw_t1 = true;
    } else if (!sent && saw_t1 && !saw_t2 && r.tcp.flags.ack && client_iss &&
               r.tcp.ack > *client_iss + 1) {
      // First packet from the server acknowledging request payload.
      tl.t2 = r.timestamp;
      saw_t2 = true;
    }
  }

  if (!saw_syn || !saw_synack || !saw_t1 || !saw_t2) {
    tl.invalid_reason = "incomplete handshake/request events";
    return tl;
  }

  // --- response data events ------------------------------------------------
  const ReassembledStream stream =
      reassemble(conn, flow, capture::Direction::kReceived);
  finish_timeline_from_stream(tl, stream, boundary);
  return tl;
}

}  // namespace

QueryTimeline extract_timeline(const capture::PacketTrace& trace,
                               const net::FlowId& flow,
                               std::size_t boundary) {
  return timeline_from_conn(trace.filter_flow(flow), flow, boundary);
}

void finish_timeline_from_stream(QueryTimeline& tl,
                                 const ReassembledStream& stream,
                                 std::size_t boundary) {
  if (stream.empty()) {
    tl.invalid_reason = "no response data";
    return;
  }
  tl.response_bytes = stream.length();
  tl.boundary = boundary;

  const auto t3 = stream.first_packet_reaching(0);
  const auto te = stream.last_packet_time();
  if (!t3 || !te) {
    tl.invalid_reason = "response stream incomplete";
    return;
  }
  tl.t3 = *t3;
  tl.te = *te;

  if (boundary == 0 || boundary > stream.length()) {
    tl.invalid_reason = "boundary outside response";
    return;
  }

  // Packet-granularity snap: the discovered common prefix may overhang a
  // few bytes into the dynamic portion (keyword-independent boilerplate
  // generated at the BE). The packet-level split — which is what the
  // paper's temporal clustering classifies — falls on the nearest segment
  // edge at or below the content boundary.
  std::size_t split = stream.snap_to_segment_end(boundary);
  if (split == 0) split = boundary;  // boundary inside the first packet
  tl.boundary = split;

  const auto t4 = stream.prefix_complete_time(split - 1);
  if (!t4) {
    tl.invalid_reason = "static portion never completed";
    return;
  }
  tl.t4 = *t4;

  if (split < stream.length()) {
    const auto t5 = stream.first_packet_reaching(split);
    if (!t5) {
      tl.invalid_reason = "dynamic portion never observed";
      return;
    }
    tl.t5 = *t5;
  } else {
    tl.t5 = tl.t4;  // response was entirely static
  }

  tl.valid = true;
}

std::vector<QueryTimeline> extract_all_timelines(
    const capture::PacketTrace& trace, net::Port server_port,
    std::size_t boundary) {
  // One grouping pass instead of a full-trace rescan per flow: with Q
  // queries in a client's capture the old shape was O(Q^2) record visits,
  // which dominated campaign analysis time.
  std::vector<QueryTimeline> out;
  for (const auto& [flow, conn] : trace.split_by_flow(server_port)) {
    out.push_back(timeline_from_conn(conn, flow, boundary));
  }
  return out;
}

}  // namespace dyncdn::analysis
