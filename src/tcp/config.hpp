// TCP tuning knobs.
//
// Defaults approximate a 2011-era Linux stack (the paper's measurement
// period). The initial congestion window is deliberately configurable:
// reviewer #1 of the paper asked about initial-window manipulation by the
// services, and our ablation bench sweeps IW = 2/4/10.
#pragma once

#include <cstddef>
#include <cstdint>

#include "sim/time.hpp"

namespace dyncdn::tcp {

struct TcpConfig {
  /// Maximum segment (payload) size in bytes.
  std::size_t mss = 1448;

  /// Initial congestion window, in segments (RFC 3390 allowed up to 4;
  /// RFC 6928 later raised it to 10, which Google deployed early).
  std::size_t initial_cwnd_segments = 4;

  /// Initial slow-start threshold in bytes ("infinite" by default).
  std::size_t initial_ssthresh = 1 << 30;

  /// Receive buffer: bounds the advertised window.
  std::size_t receive_buffer = 1 << 20;

  /// RTO bounds (RFC 6298 with Linux-style 200ms floor).
  sim::SimTime min_rto = sim::SimTime::milliseconds(200);
  sim::SimTime max_rto = sim::SimTime::seconds(60);
  sim::SimTime initial_rto = sim::SimTime::seconds(1);

  /// Delayed ACKs (off by default: the emulated clients ack every segment,
  /// which keeps packet timelines easy to read; the ablation bench turns
  /// this on to show the effect on slow-start ramp).
  bool delayed_ack = false;
  sim::SimTime delayed_ack_timeout = sim::SimTime::milliseconds(40);

  /// Number of duplicate ACKs triggering fast retransmit.
  int dupack_threshold = 3;

  /// Consecutive RTO-driven retransmissions of the same segment before the
  /// connection is declared dead and torn down (Linux: tcp_retries2 ≈ 15;
  /// we default lower so pathological sims converge quickly).
  int max_retries = 10;

  /// RFC 2861 congestion-window validation: after an idle period of one
  /// RTO, halve cwnd per elapsed RTO down to the restart window (the
  /// initial window). Off by default — 2011 Linux shipped it enabled, but
  /// services pinning persistent connections often disabled it, which is
  /// part of why warmed FE<->BE connections stay fast; the warm/cold
  /// ablation flips this on to quantify the effect.
  bool cwnd_validation = false;

  /// TIME_WAIT linger. Short by default so experiment runs drain quickly;
  /// the simulator never reuses a 4-tuple within this window anyway.
  sim::SimTime time_wait = sim::SimTime::milliseconds(100);
};

}  // namespace dyncdn::tcp
