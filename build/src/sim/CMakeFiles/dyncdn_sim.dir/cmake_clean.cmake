file(REMOVE_RECURSE
  "CMakeFiles/dyncdn_sim.dir/event_queue.cpp.o"
  "CMakeFiles/dyncdn_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/dyncdn_sim.dir/random.cpp.o"
  "CMakeFiles/dyncdn_sim.dir/random.cpp.o.d"
  "CMakeFiles/dyncdn_sim.dir/simulator.cpp.o"
  "CMakeFiles/dyncdn_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/dyncdn_sim.dir/time.cpp.o"
  "CMakeFiles/dyncdn_sim.dir/time.cpp.o.d"
  "libdyncdn_sim.a"
  "libdyncdn_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dyncdn_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
