// Figure 7 reproduction (Datasets A): scatter of per-node T_static and
// T_dynamic vs RTT when every vantage point queries its *default* FE.
//
// Paper shape: although Bing's FEs are closer (smaller RTTs), its T_static
// and T_dynamic are significantly higher AND more variable than Google's —
// placing FEs close to clients does not by itself deliver performance.
//
// Quick: 100 nodes x 10 reps. DYNCDN_FULL=1: 200 x 30.
#include <cstdio>

#include "bench_util.hpp"
#include "core/inference.hpp"
#include "search/keywords.hpp"
#include "stats/descriptive.hpp"
#include "testbed/parallel_experiment.hpp"
#include "testbed/scenario.hpp"

using namespace dyncdn;
using namespace dyncdn::sim::literals;

namespace {

struct Run {
  std::string name;
  std::vector<double> rtt, tsta, tdyn;
  std::vector<double> all_static, all_dynamic;  // raw per-query values
};

Run run_service(cdn::ServiceProfile profile, std::size_t clients,
                std::size_t reps) {
  testbed::ScenarioOptions opt;
  opt.profile = profile;
  opt.client_count = clients;
  opt.seed = 77;

  testbed::ExperimentOptions eo;
  eo.reps_per_node = reps;
  eo.interval = 1300_ms;
  search::KeywordCatalog catalog(7);
  eo.keywords = catalog.figure3_keywords();  // cycle realistic variety
  // Sharded one-replica-per-vantage-point; thread-count-invariant results.
  const auto result =
      testbed::run_default_fe_experiment(opt, eo, testbed::ReplicaPlan{});

  Run run;
  run.name = profile.name;
  for (const auto& n : result.per_node) {
    if (n.samples == 0) continue;
    run.rtt.push_back(n.rtt_ms);
    run.tsta.push_back(n.med_static_ms);
    run.tdyn.push_back(n.med_dynamic_ms);
  }
  for (const auto& q : result.all()) {
    run.all_static.push_back(q.t_static_ms);
    run.all_dynamic.push_back(q.t_dynamic_ms);
  }
  return run;
}

}  // namespace

int main() {
  const std::size_t clients = bench::full_scale() ? 200 : 100;
  const std::size_t reps = bench::full_scale() ? 30 : 10;
  bench::banner("Figure 7 — T_static / T_dynamic vs RTT, default FEs "
                "(Datasets A)",
                std::to_string(clients) + " vantage points x " +
                    std::to_string(reps) + " reps");

  const Run bing = run_service(cdn::bing_like_profile(), clients, reps);
  const Run google = run_service(cdn::google_like_profile(), clients, reps);

  bench::section("(a) T_static vs RTT  (B = Bing-like, G = Google-like)");
  bench::ascii_scatter2(bing.rtt, bing.tsta, 'B', google.rtt, google.tsta,
                        'G');
  bench::section("(b) T_dynamic vs RTT");
  bench::ascii_scatter2(bing.rtt, bing.tdyn, 'B', google.rtt, google.tdyn,
                        'G');

  bench::section("summary statistics (per-query values)");
  std::printf("%-14s %22s %22s\n", "", "T_static (med/sd)",
              "T_dynamic (med/sd)");
  for (const Run* r : {&bing, &google}) {
    std::printf("%-14s %12.1f / %7.1f %12.1f / %7.1f\n", r->name.c_str(),
                stats::median(r->all_static), stats::stddev(r->all_static),
                stats::median(r->all_dynamic), stats::stddev(r->all_dynamic));
  }

  bench::section("paper-shape summary");
  const bool closer =
      stats::median(bing.rtt) < stats::median(google.rtt);
  const bool slower_static = stats::median(bing.all_static) >
                             stats::median(google.all_static);
  const bool slower_dynamic = stats::median(bing.all_dynamic) >
                              stats::median(google.all_dynamic);
  const bool more_variable =
      stats::stddev(bing.all_dynamic) > stats::stddev(google.all_dynamic);
  std::printf("Bing FEs closer (median RTT %.1f vs %.1f ms): %s\n",
              stats::median(bing.rtt), stats::median(google.rtt),
              closer ? "yes" : "no");
  std::printf("...yet Bing T_static higher:  %s\n",
              slower_static ? "yes" : "no");
  std::printf("...and Bing T_dynamic higher: %s\n",
              slower_dynamic ? "yes" : "no");
  std::printf("...and Bing more variable:    %s\n",
              more_variable ? "yes" : "no");
  std::printf("paper shape %s: proximity does not imply performance\n",
              (closer && slower_static && slower_dynamic && more_variable)
                  ? "HOLDS"
                  : "VIOLATED");
  return 0;
}
