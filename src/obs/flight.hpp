// Slow-query flight recorder: a bounded ring of recently completed query
// span trees plus a trigger that promotes slow queries — T_dynamic above
// an explicit threshold, or above a running quantile estimate × factor —
// to a retained slow-query log that dumps to JSON.
//
// The recorder is fed in deterministic completion order (the attribution
// walker sorts completed queries by end time), so for a fixed
// configuration the promoted set is reproducible. merge() concatenates
// slow entries in call order and re-applies the bound; the experiment
// merge step calls it in replica-index order, keeping the merged log
// deterministic at any thread count. The adaptive trigger is per-replica:
// each replica's running quantile sees only its own queries.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace dyncdn::obs {

class FlightRecorder {
 public:
  struct Options {
    std::size_t recent_capacity = 256;  // recent-completions ring
    std::size_t slow_capacity = 64;     // retained slow queries
    // Adaptive trigger: slow when t_dynamic_ms > quantile(q) × factor,
    // armed only after min_samples completions. threshold_ms > 0
    // replaces the adaptive trigger with a fixed cut.
    double slow_factor = 3.0;
    double quantile = 0.90;
    std::uint64_t min_samples = 20;
    double threshold_ms = 0.0;
  };

  struct Entry {
    std::string node;     // vantage point
    std::string keyword;  // query keyword
    double t_dynamic_ms = 0.0;
    double threshold_ms = 0.0;  // trigger value at promotion (0 = recent)
    std::int64_t end_ns = 0;    // completion time (sort key)
    // The query's full span subtree, parent before child.
    std::vector<SpanRecord> spans;
  };

  FlightRecorder();
  explicit FlightRecorder(Options options);

  const Options& options() const { return options_; }

  // Record one completed query. Returns true when promoted to the slow
  // log. The trigger consults the running histogram *before* this entry
  // is folded in, so a first outlier can still fire the adaptive cut.
  bool observe(Entry entry);

  void merge(const FlightRecorder& other);

  const std::deque<Entry>& recent() const { return recent_; }
  const std::deque<Entry>& slow() const { return slow_; }
  std::uint64_t observed() const { return observed_; }

  // Current promotion threshold in ms; 0 while the trigger is unarmed.
  double current_threshold_ms() const;

  // {"observed":N,"threshold_ms":...,"slow":[entries with span trees]}.
  // Span objects use the same field names as the Chrome-trace exporter's
  // args block ({id,parent,name,cat,start_ns,end_ns,args,events}), so
  // trace_inspect can rebuild the subtree.
  std::string to_json() const;

 private:
  Options options_;
  std::uint64_t observed_ = 0;
  Histogram t_dynamic_;  // running distribution for the adaptive trigger
  std::deque<Entry> recent_;
  std::deque<Entry> slow_;
};

}  // namespace dyncdn::obs
