#include "net/link.hpp"

#include <algorithm>
#include <utility>

namespace dyncdn::net {

Link::Link(sim::Simulator& simulator, LinkConfig config, DeliverFn deliver,
           std::string rng_name)
    : simulator_(simulator),
      config_(std::move(config)),
      deliver_(std::move(deliver)),
      loss_(config_.loss_factory ? config_.loss_factory() : make_no_loss()),
      loss_rng_(simulator.rng().stream(rng_name)) {}

sim::SimTime Link::serialization_delay(std::size_t bytes) const {
  if (config_.bandwidth_bps <= 0.0) return sim::SimTime::zero();
  const double seconds =
      static_cast<double>(bytes) * 8.0 / config_.bandwidth_bps;
  return sim::SimTime::from_seconds(seconds);
}

void Link::transmit(PacketPtr packet) {
  ++stats_.packets_offered;

  if (loss_->should_drop(loss_rng_)) {
    ++stats_.drops_loss;
    return;
  }
  if (backlog_ >= config_.queue_capacity) {
    ++stats_.drops_queue;
    return;
  }

  const sim::SimTime now = simulator_.now();
  const sim::SimTime tx_start = std::max(now, busy_until_);
  const sim::SimTime tx_end =
      tx_start + serialization_delay(packet->wire_size());
  busy_until_ = tx_end;
  ++backlog_;

  // The transmitter frees its queue slot when serialization completes, not
  // when the packet lands after propagation.
  simulator_.schedule_at(tx_end, [this]() { --backlog_; });

  sim::SimTime arrival = tx_end + config_.propagation_delay;
  if (config_.reorder_probability > 0.0 &&
      loss_rng_.chance(config_.reorder_probability)) {
    arrival += config_.reorder_extra_delay;
    ++stats_.packets_reordered;
  }
  simulator_.schedule_at(arrival, [this, packet = std::move(packet)]() {
    ++stats_.packets_delivered;
    stats_.bytes_delivered += packet->wire_size();
    deliver_(packet);
  });
}

}  // namespace dyncdn::net
