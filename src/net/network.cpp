#include "net/network.hpp"

#include <limits>
#include <queue>
#include <stdexcept>
#include <utility>

namespace dyncdn::net {

Node& Network::add_node(const std::string& name, GeoPoint location) {
  if (by_name_.contains(name)) {
    throw std::invalid_argument("Network::add_node: duplicate name " + name);
  }
  const NodeId id(static_cast<std::uint32_t>(nodes_.size() + 1));
  nodes_.push_back(std::make_unique<Node>(*this, id, name, location));
  by_name_.emplace(name, id);
  routes_dirty_ = true;
  return *nodes_.back();
}

void Network::connect(Node& a, Node& b, const LinkConfig& config) {
  connect(a, b, config, config);
}

void Network::connect(Node& a, Node& b, const LinkConfig& a_to_b,
                      const LinkConfig& b_to_a) {
  auto make_edge = [this](Node& from, Node& to, const LinkConfig& cfg) {
    Node* dst = &to;
    auto link = std::make_unique<Link>(
        simulator_, cfg,
        [dst](PacketPtr p) { dst->deliver(p); },
        "link/" + from.name() + "->" + to.name());
    adjacency_[from.id().value()].push_back(Edge{to.id(), std::move(link)});
  };
  make_edge(a, b, a_to_b);
  make_edge(b, a, b_to_a);
  routes_dirty_ = true;
}

void Network::compute_routes() {
  next_hop_.clear();
  // Dijkstra from every node, cost = propagation delay in ns.
  for (const auto& src_node : nodes_) {
    const std::uint32_t src = src_node->id().value();
    std::unordered_map<std::uint32_t, std::int64_t> dist;
    std::unordered_map<std::uint32_t, Link*> first_link;
    using QE = std::pair<std::int64_t, std::uint32_t>;
    std::priority_queue<QE, std::vector<QE>, std::greater<>> pq;
    dist[src] = 0;
    pq.emplace(0, src);
    while (!pq.empty()) {
      const auto [d, u] = pq.top();
      pq.pop();
      if (d > dist[u]) continue;
      auto adj = adjacency_.find(u);
      if (adj == adjacency_.end()) continue;
      for (const Edge& e : adj->second) {
        const std::uint32_t v = e.to.value();
        const std::int64_t nd = d + e.link->config().propagation_delay.ns();
        auto it = dist.find(v);
        if (it == dist.end() || nd < it->second) {
          dist[v] = nd;
          first_link[v] = (u == src) ? e.link.get() : first_link[u];
          pq.emplace(nd, v);
        }
      }
    }
    next_hop_[src] = std::move(first_link);
  }
  routes_dirty_ = false;
}

void Network::route(NodeId from, PacketPtr packet) {
  if (routes_dirty_) compute_routes();
  ++packets_routed_;
  if (packet->id == 0) packet->id = next_packet_id_++;
  if (packet->dst == from) {  // local delivery without touching a link
    node(from).deliver(packet);
    return;
  }
  auto src_it = next_hop_.find(from.value());
  if (src_it != next_hop_.end()) {
    auto dst_it = src_it->second.find(packet->dst.value());
    if (dst_it != src_it->second.end()) {
      dst_it->second->transmit(std::move(packet));
      return;
    }
  }
  ++no_route_drops_;
}

Node& Network::node(NodeId id) {
  const std::size_t idx = id.value();
  if (idx == 0 || idx > nodes_.size()) {
    throw std::out_of_range("Network::node: bad id");
  }
  return *nodes_[idx - 1];
}

const Node& Network::node(NodeId id) const {
  const std::size_t idx = id.value();
  if (idx == 0 || idx > nodes_.size()) {
    throw std::out_of_range("Network::node: bad id");
  }
  return *nodes_[idx - 1];
}

Node* Network::find_node(const std::string& name) {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) return nullptr;
  return &node(it->second);
}

sim::SimTime Network::path_delay(NodeId a, NodeId b) const {
  if (a == b) return sim::SimTime::zero();
  // Re-run a tiny Dijkstra; only used in setup/analysis, not on hot paths.
  std::unordered_map<std::uint32_t, std::int64_t> dist;
  using QE = std::pair<std::int64_t, std::uint32_t>;
  std::priority_queue<QE, std::vector<QE>, std::greater<>> pq;
  dist[a.value()] = 0;
  pq.emplace(0, a.value());
  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (u == b.value()) return sim::SimTime::nanoseconds(d);
    if (d > dist[u]) continue;
    auto adj = adjacency_.find(u);
    if (adj == adjacency_.end()) continue;
    for (const Edge& e : adj->second) {
      const std::int64_t nd = d + e.link->config().propagation_delay.ns();
      auto it = dist.find(e.to.value());
      if (it == dist.end() || nd < it->second) {
        dist[e.to.value()] = nd;
        pq.emplace(nd, e.to.value());
      }
    }
  }
  return sim::SimTime::infinity();
}

Link* Network::first_hop_link(NodeId a, NodeId b) {
  if (routes_dirty_) compute_routes();
  auto src_it = next_hop_.find(a.value());
  if (src_it == next_hop_.end()) return nullptr;
  auto dst_it = src_it->second.find(b.value());
  return dst_it == src_it->second.end() ? nullptr : dst_it->second;
}

LinkStats Network::aggregate_link_stats() const {
  LinkStats total;
  for (const auto& [from, edges] : adjacency_) {
    for (const auto& edge : edges) {
      const LinkStats& s = edge.link->stats();
      total.packets_offered += s.packets_offered;
      total.packets_delivered += s.packets_delivered;
      total.drops_loss += s.drops_loss;
      total.drops_queue += s.drops_queue;
      total.packets_reordered += s.packets_reordered;
      total.bytes_delivered += s.bytes_delivered;
    }
  }
  return total;
}

}  // namespace dyncdn::net
