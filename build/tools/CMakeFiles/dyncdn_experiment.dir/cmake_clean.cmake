file(REMOVE_RECURSE
  "CMakeFiles/dyncdn_experiment.dir/dyncdn_experiment.cpp.o"
  "CMakeFiles/dyncdn_experiment.dir/dyncdn_experiment.cpp.o.d"
  "dyncdn_experiment"
  "dyncdn_experiment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dyncdn_experiment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
