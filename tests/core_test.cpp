// Inference-framework unit tests (timings, fetch bounds, threshold
// detection, fetch factoring, caching detector) on controlled inputs.
#include <gtest/gtest.h>

#include <random>

#include "analysis/timeline.hpp"
#include "core/cache_detector.hpp"
#include "core/inference.hpp"
#include "core/timings.hpp"
#include "net/geo.hpp"

namespace dyncdn::core {
namespace {

using sim::SimTime;
using namespace dyncdn::sim::literals;

analysis::QueryTimeline make_timeline(double rtt_ms, double t4_ms,
                                      double t5_ms, double te_ms) {
  analysis::QueryTimeline tl;
  tl.valid = true;
  tl.tb = SimTime::zero();
  tl.t_synack = SimTime::from_milliseconds(rtt_ms);
  tl.t1 = tl.t_synack;
  tl.t2 = SimTime::from_milliseconds(2 * rtt_ms);
  tl.t3 = SimTime::from_milliseconds(2 * rtt_ms + 1);
  tl.t4 = SimTime::from_milliseconds(t4_ms);
  tl.t5 = SimTime::from_milliseconds(t5_ms);
  tl.te = SimTime::from_milliseconds(te_ms);
  tl.boundary = 9000;
  tl.response_bytes = 25000;
  return tl;
}

TEST(Timings, DerivedFromTimelineDefinitions) {
  // rtt 20: t2 = 40. t4 = 90, t5 = 170, te = 300.
  const auto tl = make_timeline(20, 90, 170, 300);
  const auto q = timings_from_timeline(tl);
  ASSERT_TRUE(q.has_value());
  EXPECT_DOUBLE_EQ(q->rtt_ms, 20.0);
  EXPECT_DOUBLE_EQ(q->t_static_ms, 50.0);    // t4 - t2
  EXPECT_DOUBLE_EQ(q->t_dynamic_ms, 130.0);  // t5 - t2
  EXPECT_DOUBLE_EQ(q->t_delta_ms, 80.0);     // t5 - t4
  EXPECT_DOUBLE_EQ(q->overall_ms, 300.0);    // te - tb
  EXPECT_EQ(q->static_bytes, 9000u);
  EXPECT_EQ(q->dynamic_bytes, 16000u);
}

TEST(Timings, DeltaClampedAtZeroWhenCoalesced) {
  // t5 == t4 (boundary inside one packet).
  const auto q = timings_from_timeline(make_timeline(100, 250, 250, 400));
  ASSERT_TRUE(q.has_value());
  EXPECT_DOUBLE_EQ(q->t_delta_ms, 0.0);
}

TEST(Timings, InvalidTimelineYieldsNullopt) {
  analysis::QueryTimeline tl;
  tl.valid = false;
  EXPECT_FALSE(timings_from_timeline(tl).has_value());
}

TEST(Timings, BatchSkipsInvalid) {
  std::vector<analysis::QueryTimeline> tls{make_timeline(10, 50, 80, 100),
                                           analysis::QueryTimeline{},
                                           make_timeline(10, 60, 90, 110)};
  EXPECT_EQ(timings_from_timelines(tls).size(), 2u);
}

TEST(Timings, ExtractorsPullColumns) {
  std::vector<QueryTimings> qs(3);
  qs[0].rtt_ms = 1;
  qs[1].rtt_ms = 2;
  qs[2].rtt_ms = 3;
  qs[0].t_dynamic_ms = 10;
  qs[1].t_dynamic_ms = 20;
  qs[2].t_dynamic_ms = 30;
  EXPECT_EQ(extract_rtt(qs), (std::vector<double>{1, 2, 3}));
  EXPECT_EQ(extract_dynamic(qs), (std::vector<double>{10, 20, 30}));
}

TEST(FetchBoundsTest, OrderAndContainment) {
  QueryTimings q;
  q.t_delta_ms = 40;
  q.t_dynamic_ms = 130;
  const FetchBounds b = fetch_bounds(q);
  EXPECT_DOUBLE_EQ(b.lower_ms, 40.0);
  EXPECT_DOUBLE_EQ(b.upper_ms, 130.0);
  EXPECT_LE(b.lower_ms, b.upper_ms);
  EXPECT_TRUE(b.contains(40.0));
  EXPECT_TRUE(b.contains(130.0));
  EXPECT_TRUE(b.contains(85.0));
  EXPECT_FALSE(b.contains(39.9));
  EXPECT_FALSE(b.contains(130.1));
  EXPECT_DOUBLE_EQ(b.width(), 90.0);
}

TEST(Aggregate, MediansPerNode) {
  std::vector<QueryTimings> qs(5);
  for (std::size_t i = 0; i < qs.size(); ++i) {
    qs[i].rtt_ms = 10 + static_cast<double>(i);        // median 12
    qs[i].t_static_ms = 100 - static_cast<double>(i);  // median 98
    qs[i].t_dynamic_ms = 200 + 10.0 * i;               // median 220
    qs[i].t_delta_ms = static_cast<double>(i);         // median 2
    qs[i].overall_ms = 500;
  }
  const NodeAggregate a = aggregate_node("node-x", qs);
  EXPECT_EQ(a.node_name, "node-x");
  EXPECT_EQ(a.samples, 5u);
  EXPECT_DOUBLE_EQ(a.rtt_ms, 12.0);
  EXPECT_DOUBLE_EQ(a.med_static_ms, 98.0);
  EXPECT_DOUBLE_EQ(a.med_dynamic_ms, 220.0);
  EXPECT_DOUBLE_EQ(a.med_delta_ms, 2.0);
  EXPECT_DOUBLE_EQ(a.med_overall_ms, 500.0);
}

TEST(Aggregate, EmptyInputSafe) {
  const NodeAggregate a = aggregate_node("empty", {});
  EXPECT_EQ(a.samples, 0u);
  EXPECT_DOUBLE_EQ(a.med_dynamic_ms, 0.0);
}

std::vector<NodeAggregate> synthetic_delta_profile(double t_fetch_ms,
                                                   double per_rtt_factor) {
  // The model: T_delta = max(0, T_fetch - factor*RTT).
  std::vector<NodeAggregate> nodes;
  for (double rtt = 5; rtt <= 250; rtt += 5) {
    NodeAggregate n;
    n.rtt_ms = rtt;
    n.med_delta_ms = std::max(0.0, t_fetch_ms - per_rtt_factor * rtt);
    n.samples = 10;
    nodes.push_back(n);
  }
  return nodes;
}

TEST(Threshold, DetectsCollapsePoint) {
  // T_fetch 150ms, static delivery ~1.5 RTT: collapse at RTT = 100ms.
  const auto nodes = synthetic_delta_profile(150.0, 1.5);
  const ThresholdEstimate est = estimate_delta_threshold(nodes, 1.0);
  ASSERT_TRUE(est.found);
  EXPECT_NEAR(est.threshold_rtt_ms, 100.0, 7.0);
  EXPECT_NEAR(est.pre_threshold_fit.slope, -1.5, 0.05);
  EXPECT_NEAR(est.pre_threshold_fit.intercept, 150.0, 5.0);
}

TEST(Threshold, LargerFetchTimeMeansLargerThreshold) {
  // The Bing-vs-Google contrast: larger T_fetch -> collapse at higher RTT.
  const auto google = synthetic_delta_profile(75.0, 1.5);
  const auto bing = synthetic_delta_profile(225.0, 1.5);
  const auto eg = estimate_delta_threshold(google, 1.0);
  const auto eb = estimate_delta_threshold(bing, 1.0);
  ASSERT_TRUE(eg.found);
  ASSERT_TRUE(eb.found);
  EXPECT_GT(eb.threshold_rtt_ms, 2.0 * eg.threshold_rtt_ms);
}

TEST(Threshold, NotFoundWhenDeltaNeverCollapses) {
  std::vector<NodeAggregate> nodes;
  for (double rtt = 5; rtt <= 100; rtt += 5) {
    NodeAggregate n;
    n.rtt_ms = rtt;
    n.med_delta_ms = 500.0 - rtt;  // stays large
    nodes.push_back(n);
  }
  EXPECT_FALSE(estimate_delta_threshold(nodes, 1.0).found);
  EXPECT_FALSE(estimate_delta_threshold({}, 1.0).found);
}

TEST(Factoring, RecoversProcAndSlope) {
  // Synthesize Fig. 9: T_dynamic = T_proc + C * RTT(distance) + noise.
  std::mt19937 gen(5);
  std::normal_distribution<> noise(0, 4);
  const double t_proc = 260.0;
  const double c_rtts = 4.0;
  std::vector<double> miles, tdyn;
  for (double d = 25; d <= 500; d += 25) {
    miles.push_back(d);
    const double rtt_ms = 2.0 * d / net::kFiberMilesPerMs;
    tdyn.push_back(t_proc + c_rtts * rtt_ms + noise(gen));
  }
  const FetchFactoring f = factor_fetch_time(miles, tdyn);
  EXPECT_NEAR(f.t_proc_ms(), 260.0, 10.0);
  EXPECT_NEAR(f.implied_round_trips(), 4.0, 1.2);
  EXPECT_NEAR(f.slope_ms_per_mile(), 4.0 * 2.0 / net::kFiberMilesPerMs,
              0.02);
  EXPECT_FALSE(f.to_string().empty());
}

TEST(Factoring, InterceptOrderingMatchesPaper) {
  // Bing's intercept (~260ms) must dwarf Google's (~34ms) while the slopes
  // stay comparable — the paper's headline §5 finding.
  auto synth = [](double t_proc) {
    std::vector<double> miles, tdyn;
    for (double d = 25; d <= 500; d += 25) {
      miles.push_back(d);
      tdyn.push_back(t_proc + 4.0 * 2.0 * d / net::kFiberMilesPerMs);
    }
    return factor_fetch_time(miles, tdyn);
  };
  const FetchFactoring bing = synth(260.0);
  const FetchFactoring google = synth(34.0);
  EXPECT_GT(bing.t_proc_ms(), 5.0 * google.t_proc_ms());
  EXPECT_NEAR(bing.slope_ms_per_mile(), google.slope_ms_per_mile(), 1e-9);
}

TEST(CacheDetector, NoCachingWhenDistributionsMatch) {
  std::mt19937 gen(6);
  std::lognormal_distribution<> draw(std::log(150.0), 0.2);
  std::vector<double> same, distinct;
  for (int i = 0; i < 300; ++i) {
    same.push_back(draw(gen));
    distinct.push_back(draw(gen));
  }
  const CacheDetectionResult r = detect_fe_caching(same, distinct);
  EXPECT_FALSE(r.caching_detected);
  EXPECT_NE(r.verdict().find("no FE result caching"), std::string::npos);
}

TEST(CacheDetector, CachingDetectedWhenRepeatsCollapse) {
  std::mt19937 gen(7);
  std::lognormal_distribution<> fast(std::log(8.0), 0.2);   // cache hits
  std::lognormal_distribution<> slow(std::log(150.0), 0.2);
  std::vector<double> same, distinct;
  for (int i = 0; i < 300; ++i) {
    same.push_back(fast(gen));
    distinct.push_back(slow(gen));
  }
  const CacheDetectionResult r = detect_fe_caching(same, distinct);
  EXPECT_TRUE(r.caching_detected);
  EXPECT_LT(r.median_same_ms, r.median_distinct_ms);
}

TEST(CacheDetector, KeywordCostDifferenceAloneIsNotCaching) {
  // Distributions differ (repeated keyword is somewhat faster because the
  // keyword itself is cheap) but the drop is mild: must NOT flag caching.
  std::mt19937 gen(8);
  std::lognormal_distribution<> a(std::log(120.0), 0.15);
  std::lognormal_distribution<> b(std::log(150.0), 0.15);
  std::vector<double> same, distinct;
  for (int i = 0; i < 400; ++i) {
    same.push_back(a(gen));
    distinct.push_back(b(gen));
  }
  const CacheDetectionResult r = detect_fe_caching(same, distinct);
  EXPECT_TRUE(r.ks.distributions_differ());  // statistically different...
  EXPECT_FALSE(r.caching_detected);          // ...but not caching-shaped
}

}  // namespace
}  // namespace dyncdn::core
