#include "net/network.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <stdexcept>
#include <utility>

namespace dyncdn::net {

void Network::set_shards(std::vector<sim::Simulator*> sims) {
  if (!nodes_.empty()) {
    throw std::logic_error("Network::set_shards: nodes already exist");
  }
  if (sims.empty() || sims.front() != &simulator_) {
    throw std::invalid_argument(
        "Network::set_shards: sims[0] must be the base simulator");
  }
  shard_sims_ = std::move(sims);
  no_route_by_shard_.assign(shard_sims_.size(), 0);
  routed_by_shard_.assign(shard_sims_.size(), 0);
  arrivals_by_shard_.assign(shard_sims_.size(), ShardArrivals{});
}

Node& Network::add_node(const std::string& name, GeoPoint location,
                        std::uint32_t shard) {
  if (by_name_.contains(name)) {
    throw std::invalid_argument("Network::add_node: duplicate name " + name);
  }
  if (shard >= shard_count()) {
    throw std::out_of_range("Network::add_node: shard out of range");
  }
  const NodeId id(static_cast<std::uint32_t>(nodes_.size() + 1));
  nodes_.push_back(std::make_unique<Node>(*this, id, name, location,
                                          shard_simulator(shard), shard));
  by_name_.emplace(name, id);
  routes_dirty_ = true;
  return *nodes_.back();
}

void Network::connect(Node& a, Node& b, const LinkConfig& config) {
  connect(a, b, config, config);
}

void Network::connect(Node& a, Node& b, const LinkConfig& a_to_b,
                      const LinkConfig& b_to_a) {
  auto make_edge = [this](Node& from, Node& to, const LinkConfig& cfg) {
    Node* dst = &to;
    // The link lives on the SOURCE node's kernel: transmit() reads that
    // shard's clock and consumes its (seed-identical) loss stream.
    auto link = std::make_unique<Link>(
        from.simulator(), cfg,
        [dst](PacketPtr p) { dst->deliver(p); },
        "link/" + from.name() + "->" + to.name());
    if (from.shard() != to.shard()) {
      mailboxes_.push_back(std::make_unique<Mailbox>());
      Mailbox* box = mailboxes_.back().get();
      box->dst = dst;
      box->dst_sim = &to.simulator();
      // The post stamp is the source-shard clock: it reconstructs, at
      // flush time, the order in which a serial kernel would have
      // inserted these delivery events.
      sim::Simulator* src_sim = &from.simulator();
      link->set_cross_shard_post(
          [box, src_sim](sim::SimTime arrival, PacketPtr p) {
            // Mirror the transmit-time delivery counts the Link just
            // recorded, so sampled_link_stats() can back them out.
            ++box->posted_packets;
            box->posted_bytes += p->wire_size();
            box->staged.push_back(
                Mailbox::Staged{arrival, src_sim->now(), std::move(p)});
          });
      min_cross_delay_ = std::min(min_cross_delay_, cfg.propagation_delay);
    }
    all_links_.push_back(link.get());
    const std::uint32_t fid = from.id().value();
    if (adjacency_.size() <= fid) adjacency_.resize(fid + 1);
    adjacency_[fid].push_back(Edge{to.id(), std::move(link)});
  };
  make_edge(a, b, a_to_b);
  make_edge(b, a, b_to_a);
  routes_dirty_ = true;
}

std::size_t Network::flush_mailboxes() {
  // Gather every staged packet, then schedule in (arrival, posted) order:
  // destination queues break same-time ties by insertion order, so this
  // reproduces the serial kernel, where each delivery event is inserted at
  // its source's transmit time. stable_sort keeps (link creation order,
  // per-link FIFO) for exact (arrival, posted) ties.
  struct Entry {
    Mailbox* box;
    std::size_t index;
  };
  std::vector<Entry> entries;
  for (const auto& box : mailboxes_) {
    for (std::size_t i = 0; i < box->staged.size(); ++i) {
      entries.push_back(Entry{box.get(), i});
    }
  }
  std::stable_sort(entries.begin(), entries.end(),
                   [](const Entry& a, const Entry& b) {
                     const Mailbox::Staged& sa = a.box->staged[a.index];
                     const Mailbox::Staged& sb = b.box->staged[b.index];
                     if (sa.arrival != sb.arrival) return sa.arrival < sb.arrival;
                     return sa.posted < sb.posted;
                   });
  for (const Entry& e : entries) {
    Mailbox::Staged& s = e.box->staged[e.index];
    // The arrival closure runs on the destination shard's worker thread,
    // which exclusively owns that shard's ShardArrivals slot.
    ShardArrivals* arrived = &arrivals_by_shard_[e.box->dst->shard()];
    e.box->dst_sim->schedule_at(
        s.arrival, [dst = e.box->dst, arrived, p = std::move(s.packet)]() {
          ++arrived->packets;
          arrived->bytes += p->wire_size();
          dst->deliver(p);
        });
  }
  for (const auto& box : mailboxes_) box->staged.clear();
  return entries.size();
}

bool Network::mailboxes_empty() const {
  for (const auto& box : mailboxes_) {
    if (!box->staged.empty()) return false;
  }
  return true;
}

void Network::compute_routes() {
  const std::size_t stride = nodes_.size() + 1;
  next_hop_stride_ = stride;
  next_hop_.assign(stride * stride, nullptr);
  if (adjacency_.size() < stride) adjacency_.resize(stride);
  constexpr std::int64_t kUnreached = std::numeric_limits<std::int64_t>::max();
  // Dijkstra from every node, cost = propagation delay in ns. The dist row
  // and the binary heap are member scratch; the first-link row is written
  // straight into the next-hop matrix.
  for (const auto& src_node : nodes_) {
    const std::uint32_t src = src_node->id().value();
    dijkstra_dist_.assign(stride, kUnreached);
    dijkstra_heap_.clear();
    Link** first_link = next_hop_.data() + src * stride;
    dijkstra_dist_[src] = 0;
    dijkstra_heap_.emplace_back(0, src);
    while (!dijkstra_heap_.empty()) {
      std::pop_heap(dijkstra_heap_.begin(), dijkstra_heap_.end(),
                    std::greater<>());
      const auto [d, u] = dijkstra_heap_.back();
      dijkstra_heap_.pop_back();
      if (d > dijkstra_dist_[u]) continue;
      for (const Edge& e : adjacency_[u]) {
        const std::uint32_t v = e.to.value();
        const std::int64_t nd = d + e.link->config().propagation_delay.ns();
        if (nd < dijkstra_dist_[v]) {
          dijkstra_dist_[v] = nd;
          first_link[v] = (u == src) ? e.link.get() : first_link[u];
          dijkstra_heap_.emplace_back(nd, v);
          std::push_heap(dijkstra_heap_.begin(), dijkstra_heap_.end(),
                         std::greater<>());
        }
      }
    }
  }
  routes_dirty_ = false;
}

void Network::route(NodeId from, PacketPtr packet) {
  if (routes_dirty_) compute_routes();
  Node& src = node(from);
  ++routed_by_shard_[src.shard()];
  // Ids are issued per source node ((node << 40) | seq) so serial and
  // sharded runs stamp identical ids without a shared counter.
  if (packet->id == 0) packet->id = src.next_packet_id();
  if (packet->dst == from) {  // local delivery without touching a link
    src.deliver(packet);
    return;
  }
  const std::uint32_t dst = packet->dst.value();
  if (from.value() < next_hop_stride_ && dst < next_hop_stride_) {
    if (Link* link = next_hop_[from.value() * next_hop_stride_ + dst]) {
      link->transmit(std::move(packet));
      return;
    }
  }
  ++no_route_by_shard_[src.shard()];
}

std::uint64_t Network::no_route_drops() const {
  std::uint64_t total = 0;
  for (std::uint64_t n : no_route_by_shard_) total += n;
  return total;
}

std::uint64_t Network::packets_routed() const {
  std::uint64_t total = 0;
  for (std::uint64_t n : routed_by_shard_) total += n;
  return total;
}

std::uint64_t Network::packets_created() const {
  std::uint64_t total = 0;
  for (const auto& node : nodes_) total += node->packets_created();
  return total;
}

Node& Network::node(NodeId id) {
  const std::size_t idx = id.value();
  if (idx == 0 || idx > nodes_.size()) {
    throw std::out_of_range("Network::node: bad id");
  }
  return *nodes_[idx - 1];
}

const Node& Network::node(NodeId id) const {
  const std::size_t idx = id.value();
  if (idx == 0 || idx > nodes_.size()) {
    throw std::out_of_range("Network::node: bad id");
  }
  return *nodes_[idx - 1];
}

Node* Network::find_node(const std::string& name) {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) return nullptr;
  return &node(it->second);
}

sim::SimTime Network::path_delay(NodeId a, NodeId b) const {
  if (a == b) return sim::SimTime::zero();
  // Re-run a tiny Dijkstra; only used in setup/analysis, not on hot paths
  // (const, so it keeps its own scratch rather than the members).
  constexpr std::int64_t kUnreached = std::numeric_limits<std::int64_t>::max();
  std::vector<std::int64_t> dist(nodes_.size() + 1, kUnreached);
  using QE = std::pair<std::int64_t, std::uint32_t>;
  std::priority_queue<QE, std::vector<QE>, std::greater<>> pq;
  dist[a.value()] = 0;
  pq.emplace(0, a.value());
  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (u == b.value()) return sim::SimTime::nanoseconds(d);
    if (d > dist[u]) continue;
    if (u >= adjacency_.size()) continue;
    for (const Edge& e : adjacency_[u]) {
      const std::int64_t nd = d + e.link->config().propagation_delay.ns();
      if (nd < dist[e.to.value()]) {
        dist[e.to.value()] = nd;
        pq.emplace(nd, e.to.value());
      }
    }
  }
  return sim::SimTime::infinity();
}

Link* Network::first_hop_link(NodeId a, NodeId b) {
  if (routes_dirty_) compute_routes();
  if (a.value() >= next_hop_stride_ || b.value() >= next_hop_stride_) {
    return nullptr;
  }
  return next_hop_[a.value() * next_hop_stride_ + b.value()];
}

LinkStats Network::aggregate_link_stats() const {
  // Flat link list, not the adjacency map: this runs once per sampler
  // tick, and pointer-chasing the per-node edge vectors showed up in the
  // telemetry overhead measurement.
  LinkStats total;
  for (const Link* link : all_links_) {
    const LinkStats& s = link->stats();
    total.packets_offered += s.packets_offered;
    total.packets_delivered += s.packets_delivered;
    total.drops_loss += s.drops_loss;
    total.drops_queue += s.drops_queue;
    total.packets_reordered += s.packets_reordered;
    total.bytes_delivered += s.bytes_delivered;
  }
  return total;
}

LinkStats Network::sampled_link_stats() const {
  LinkStats total = aggregate_link_stats();
  // Unsigned wrap in the intermediate is fine: arrived <= posted always,
  // so the final sums are non-negative.
  for (const auto& box : mailboxes_) {
    total.packets_delivered -= box->posted_packets;
    total.bytes_delivered -= box->posted_bytes;
  }
  for (const ShardArrivals& a : arrivals_by_shard_) {
    total.packets_delivered += a.packets;
    total.bytes_delivered += a.bytes;
  }
  return total;
}

}  // namespace dyncdn::net
