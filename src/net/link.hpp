// Unidirectional point-to-point link with propagation delay, serialization
// (bandwidth) delay, a drop-tail FIFO queue, and a pluggable loss model.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>

#include "net/loss_model.hpp"
#include "net/packet.hpp"
#include "sim/simulator.hpp"

namespace dyncdn::net {

/// Parameters for one direction of a link.
struct LinkConfig {
  sim::SimTime propagation_delay = sim::SimTime::milliseconds(1);
  /// Bits per second; 0 means infinite (no serialization delay).
  double bandwidth_bps = 1e9;
  /// Maximum packets queued or in transmission before tail drop.
  std::size_t queue_capacity = 256;
  /// Factory for this direction's loss model; null means lossless.
  std::function<std::unique_ptr<LossModel>()> loss_factory;
  /// With this probability a packet is delayed by `reorder_extra_delay`
  /// beyond its normal arrival, letting later packets overtake it —
  /// multipath-style reordering (0 = strictly FIFO).
  double reorder_probability = 0.0;
  sim::SimTime reorder_extra_delay = sim::SimTime::milliseconds(3);
  /// Batch contiguous in-flight deliveries (packet trains) behind a single
  /// kernel event instead of one event per packet. Timestamps and handler
  /// ordering are preserved exactly — each packet is still delivered at
  /// its own arrival time — so results are byte-identical with the
  /// uncoalesced path; this is purely an event-count optimization.
  /// Ignored (always per-packet) when reorder_probability > 0, since
  /// reordered arrivals are not FIFO.
  bool coalesce_deliveries = true;
};

/// Counters exposed for tests and benches.
struct LinkStats {
  std::uint64_t packets_offered = 0;
  std::uint64_t packets_delivered = 0;
  std::uint64_t drops_loss = 0;   // random loss model
  std::uint64_t drops_queue = 0;  // tail drop
  std::uint64_t packets_reordered = 0;
  std::uint64_t bytes_delivered = 0;
  /// Deliveries that rode an earlier packet's train event instead of
  /// scheduling their own (the kernel events saved by coalescing).
  std::uint64_t deliveries_coalesced = 0;
};

class Link {
 public:
  using DeliverFn = std::function<void(PacketPtr)>;
  /// Cross-shard hand-off: (arrival time, packet) staged into a mailbox
  /// instead of being scheduled on this (source-shard) kernel.
  using PostFn = std::function<void(sim::SimTime, PacketPtr)>;

  /// `deliver` is invoked (at the simulated arrival time) for every packet
  /// that survives loss and queuing. `rng_name` seeds the loss stream.
  Link(sim::Simulator& simulator, LinkConfig config, DeliverFn deliver,
       std::string rng_name);

  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  /// Offer a packet to the link at the current simulated time. The packet
  /// may be dropped (loss model or full queue); survivors are delivered
  /// after serialization + propagation delay, FIFO order preserved.
  void transmit(PacketPtr packet);

  const LinkStats& stats() const { return stats_; }
  const LinkConfig& config() const { return config_; }

  /// Turn this into a cross-shard link: transmit() still runs the loss
  /// draw, serialization and queue model on the source shard's clock (the
  /// exact sequence the serial kernel runs), but the surviving packet is
  /// handed to `post` with its computed arrival time instead of being
  /// scheduled locally. The shard runner drains mailboxes at window
  /// barriers and schedules delivery on the destination shard. Delivery
  /// stats are counted at post time (totals match the serial run once the
  /// simulation drains); coalescing is bypassed — train batching only
  /// saves events on the local kernel.
  void set_cross_shard_post(PostFn post) { post_ = std::move(post); }
  bool cross_shard() const { return static_cast<bool>(post_); }

  /// Serialization time for `bytes` on this link.
  sim::SimTime serialization_delay(std::size_t bytes) const;

  /// Packets currently queued or in flight on the transmitter.
  std::size_t backlog() const;

 private:
  struct PendingDelivery {
    sim::SimTime arrival;
    PacketPtr packet;
  };

  /// Retire transmit-queue slots whose serialization has finished by `now`
  /// (the backlog is drained lazily instead of via one event per packet).
  void drain_tx_done(sim::SimTime now) const;
  /// Deliver the head of the train, then keep delivering as long as no
  /// other pending event precedes the next arrival; otherwise re-arm one
  /// event for the remainder.
  void drain_train();
  void deliver_packet(PacketPtr packet);

  sim::Simulator& simulator_;
  LinkConfig config_;
  DeliverFn deliver_;
  PostFn post_;  // null = local delivery (serial or intra-shard)
  std::unique_ptr<LossModel> loss_;
  sim::RngStream loss_rng_;
  LinkStats stats_;
  /// Time the transmitter finishes serializing the last accepted packet.
  sim::SimTime busy_until_ = sim::SimTime::zero();
  /// Serialization-completion times of accepted packets, oldest first;
  /// entries <= now no longer occupy a queue slot.
  mutable std::deque<sim::SimTime> tx_done_;
  /// In-flight packets awaiting a coalesced train delivery, FIFO.
  std::deque<PendingDelivery> train_;
  bool train_event_armed_ = false;
};

}  // namespace dyncdn::net
