#include "cdn/client.hpp"

#include <memory>
#include <utility>

#include "http/message.hpp"
#include "http/parser.hpp"
#include "obs/obs.hpp"

namespace dyncdn::cdn {

QueryClient::QueryClient(net::Node& node, tcp::TcpConfig tcp_config)
    : node_(node), stack_(node, tcp_config) {}

std::string QueryClient::target_for(const search::Keyword& keyword) {
  std::string t;
  t.reserve(48 + keyword.text.size() * 3);  // worst case: all %-escaped
  t += "/search?q=";
  t += http::url_encode(keyword.text);
  t += "&rank=";
  t += std::to_string(keyword.rank);
  t += "&cls=";
  t += search::to_string(keyword.cls);
  return t;
}

void QueryClient::submit(net::Endpoint server, const search::Keyword& keyword,
                         Handler handler) {
  sim::Simulator& simulator = node_.simulator();

  // All per-query state lives in one shared context captured by the
  // socket/parser callbacks; it dies with the last callback reference.
  struct QueryCtx {
    QueryResult result;
    Handler handler;
    std::unique_ptr<http::ResponseParser> parser;
    tcp::TcpSocket* socket = nullptr;
    bool reported = false;
#if DYNCDN_OBS
    sim::Simulator* sim = nullptr;
    obs::TraceSession* trace = nullptr;  // outlives the query (Scenario-owned)
    obs::SpanId span = obs::kNoSpan;
#endif

    void report() {
      if (reported) return;
      reported = true;
#if DYNCDN_OBS
      if (trace != nullptr) {
        trace->add_arg(span, "status",
                       obs::ArgValue::of(
                           static_cast<std::int64_t>(result.status)));
        trace->add_arg(span, "failed",
                       obs::ArgValue::of(
                           static_cast<std::int64_t>(result.failed)));
        trace->end_span(span, sim->now());
      }
#endif
      handler(result);
    }
  };
  auto ctx = std::make_shared<QueryCtx>();
  ctx->result.keyword = keyword;
  ctx->result.start = simulator.now();
  ctx->handler = std::move(handler);
#if DYNCDN_OBS
  // Root span of the query's tree; fe.*/be.* spans parent onto it via the
  // X-Trace-Span request header, the tcp.flow child carries the
  // wire-level t-stamps (see docs/OBSERVABILITY.md).
  obs::TraceSession* const trace = obs::active_trace(simulator);
  if (trace != nullptr) {
    ctx->sim = &simulator;
    ctx->trace = trace;
    ctx->span = trace->begin_span(simulator.now(), "query", "client");
    trace->add_arg(ctx->span, "node", obs::ArgValue::of(node_.name()));
    trace->add_arg(ctx->span, "keyword",
                   obs::ArgValue::of(keyword.text));
  }
#endif

  // The parser lives inside ctx, so its callbacks must NOT share ownership
  // of ctx — that would be a ctx -> parser -> callbacks -> ctx cycle and
  // the whole query context would leak. The raw pointer is safe: the
  // parser cannot outlive the context that owns it.
  QueryCtx* const self = ctx.get();
  http::ResponseParser::Callbacks pc;
  pc.on_headers = [self](const http::HttpResponse& resp,
                         std::optional<std::size_t>) {
    self->result.status = resp.status;
  };
  pc.on_body_data = [self, &simulator](std::string_view chunk) {
    if (self->result.body_bytes == 0) {
      self->result.first_byte = simulator.now();
    }
    self->result.body_bytes += chunk.size();
  };
  pc.on_complete = [self, &simulator](const http::HttpResponse&) {
    self->result.complete = simulator.now();
  };
  ctx->parser = std::make_unique<http::ResponseParser>(std::move(pc));

  tcp::TcpSocket::Callbacks cb;
  const std::string target = target_for(keyword);
  cb.on_connected = [ctx, &simulator] {
    ctx->result.connected = simulator.now();
    ctx->result.request_sent = simulator.now();
  };
  cb.on_data = [ctx](net::PayloadRef d) {
    try {
      d.for_each_slice([&ctx](std::span<const std::uint8_t> s) {
        ctx->parser->feed(std::string_view(
            reinterpret_cast<const char*>(s.data()), s.size()));
      });
    } catch (const std::exception& e) {
      ctx->result.failed = true;
      ctx->result.failure_reason = e.what();
    }
  };
  cb.on_remote_close = [ctx] {
    try {
      ctx->parser->finish_stream();
    } catch (const std::exception& e) {
      ctx->result.failed = true;
      ctx->result.failure_reason = e.what();
    }
    // The server finished its half; finish ours so the connection tears
    // down fully instead of lingering in CLOSE_WAIT.
    if (ctx->socket != nullptr) ctx->socket->close();
  };
  cb.on_closed = [ctx] {
    if (ctx->result.complete == sim::SimTime::zero() && !ctx->result.failed) {
      ctx->result.failed = true;
      ctx->result.failure_reason = "connection terminated before response";
    }
    ctx->report();
  };

  tcp::TcpSocket& socket = stack_.connect(server, std::move(cb));
  ctx->socket = &socket;
#if DYNCDN_OBS
  if (trace != nullptr) {
    const obs::SpanId flow_span = trace->begin_span(
        simulator.now(), "tcp.flow", "client", ctx->span);
    trace->add_arg(flow_span, "local_port",
                   obs::ArgValue::of(static_cast<std::int64_t>(
                       socket.flow().local.port)));
    socket.attach_trace(trace, flow_span);
  }
#endif
  // The GET is queued now and transmitted the instant the handshake
  // completes — like a browser writing into a connecting socket.
  http::HttpRequest req;
  req.target = target;
  req.set_header("Host", "search.example");
  req.set_header("Connection", "close");
#if DYNCDN_OBS
  if (trace != nullptr) {
    req.set_header("X-Trace-Span", obs::span_id_header(ctx->span));
  }
#endif
  socket.send_text(req.serialize());
  // Half-close after the request: we have nothing more to send. The FE
  // still sends its full response (close-framed) afterwards.
}

void QueryClient::submit_repeated(net::Endpoint server,
                                  const search::Keyword& keyword,
                                  std::size_t count, sim::SimTime interval,
                                  Handler handler) {
  sim::Simulator& simulator = node_.simulator();
  for (std::size_t i = 0; i < count; ++i) {
    simulator.schedule_in(interval * static_cast<std::int64_t>(i),
                          [this, server, keyword, handler]() {
                            submit(server, keyword, handler);
                          });
  }
}

}  // namespace dyncdn::cdn
