// trace_inspect — offline analyzer for saved dyncdn packet traces.
//
//   trace_inspect <trace-file> [boundary]
//
// Prints the connections found in the trace, reassembles each response
// stream, discovers the static/dynamic boundary by cross-query content
// analysis (when payloads were retained and at least two responses exist;
// otherwise pass the boundary explicitly) and prints the paper's timing
// parameters for every query.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "analysis/boundary.hpp"
#include "analysis/reassembly.hpp"
#include "analysis/timeline.hpp"
#include "capture/serialize.hpp"
#include "core/inference.hpp"
#include "core/timings.hpp"

using namespace dyncdn;

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: trace_inspect <trace-file> [boundary]\n");
    return 2;
  }

  capture::PacketTrace trace;
  try {
    trace = capture::load_trace(argv[1]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  std::printf("trace: %zu packets captured at node %u\n", trace.size(),
              trace.node().value());

  const capture::PacketTrace web = trace.filter_remote_port(80);
  const auto flows = web.flows();
  std::printf("web connections: %zu\n", flows.size());

  // Boundary: explicit argument, or content analysis over the responses.
  std::size_t boundary =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 0;
  if (boundary == 0) {
    std::vector<std::string> responses;
    for (const auto& flow : flows) {
      auto stream =
          analysis::reassemble(web, flow, capture::Direction::kReceived);
      if (!stream.bytes().empty()) responses.push_back(stream.bytes());
    }
    if (responses.size() >= 2) {
      boundary = analysis::common_prefix_boundary(responses);
      std::printf("content analysis: static portion = %zu bytes "
                  "(from %zu responses)\n",
                  boundary, responses.size());
    }
  }
  if (boundary == 0) {
    std::fprintf(stderr,
                 "no boundary available: trace lacks payloads or enough "
                 "responses; pass one explicitly.\n");
    return 1;
  }

  std::printf("\nquery\trtt_ms\tt_static_ms\tt_dynamic_ms\tt_delta_ms\t"
              "overall_ms\tfetch_lower\tfetch_upper\n");
  const auto timelines = analysis::extract_all_timelines(web, 80, boundary);
  std::size_t idx = 0;
  for (const auto& tl : timelines) {
    ++idx;
    const auto q = core::timings_from_timeline(tl);
    if (!q) {
      std::printf("%zu\tinvalid: %s\n", idx, tl.invalid_reason.c_str());
      continue;
    }
    const auto bounds = core::fetch_bounds(*q);
    std::printf("%zu\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\n", idx,
                q->rtt_ms, q->t_static_ms, q->t_dynamic_ms, q->t_delta_ms,
                q->overall_ms, bounds.lower_ms, bounds.upper_ms);
  }
  return 0;
}
