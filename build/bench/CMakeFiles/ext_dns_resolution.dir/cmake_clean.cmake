file(REMOVE_RECURSE
  "CMakeFiles/ext_dns_resolution.dir/ext_dns_resolution.cpp.o"
  "CMakeFiles/ext_dns_resolution.dir/ext_dns_resolution.cpp.o.d"
  "ext_dns_resolution"
  "ext_dns_resolution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_dns_resolution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
