file(REMOVE_RECURSE
  "CMakeFiles/test_tcp_state.dir/tcp_state_test.cpp.o"
  "CMakeFiles/test_tcp_state.dir/tcp_state_test.cpp.o.d"
  "test_tcp_state"
  "test_tcp_state.pdb"
  "test_tcp_state[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tcp_state.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
