#include "capture/serialize.hpp"

#include "capture/spill.hpp"

#include <charconv>
#include <cstdio>
#include <fstream>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace dyncdn::capture {

namespace {

constexpr std::string_view kHeaderPrefix = "# dyncdn-trace v1 node=";

std::string flags_to_text(const net::TcpFlags& f) {
  std::string s;
  if (f.syn) s += 'S';
  if (f.ack) s += 'A';
  if (f.fin) s += 'F';
  if (f.rst) s += 'R';
  return s.empty() ? "." : s;
}

net::TcpFlags flags_from_text(std::string_view s) {
  net::TcpFlags f;
  for (const char c : s) {
    switch (c) {
      case 'S': f.syn = true; break;
      case 'A': f.ack = true; break;
      case 'F': f.fin = true; break;
      case 'R': f.rst = true; break;
      case '.': break;
      default:
        throw std::runtime_error("trace parse: bad flag character");
    }
  }
  return f;
}

void append_hex(std::string& out, std::span<const std::uint8_t> bytes) {
  static const char* digits = "0123456789abcdef";
  for (const std::uint8_t b : bytes) {
    out += digits[b >> 4];
    out += digits[b & 0xF];
  }
}

std::vector<std::uint8_t> parse_hex(std::string_view hex) {
  if (hex.size() % 2 != 0) {
    throw std::runtime_error("trace parse: odd-length hex payload");
  }
  auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    throw std::runtime_error("trace parse: bad hex digit");
  };
  std::vector<std::uint8_t> out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    out.push_back(static_cast<std::uint8_t>(nibble(hex[i]) * 16 +
                                            nibble(hex[i + 1])));
  }
  return out;
}

template <typename T>
T parse_number(std::string_view token, const char* what) {
  T value{};
  const auto [p, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc{} || p != token.data() + token.size()) {
    throw std::runtime_error(std::string("trace parse: bad ") + what + ": " +
                             std::string(token));
  }
  return value;
}

/// Split a line into whitespace-separated tokens.
std::vector<std::string_view> tokenize(std::string_view line) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && line[i] == ' ') ++i;
    const std::size_t start = i;
    while (i < line.size() && line[i] != ' ') ++i;
    if (i > start) out.push_back(line.substr(start, i - start));
  }
  return out;
}

}  // namespace

std::string serialize_trace(const PacketTrace& trace, bool with_payloads) {
  std::string out;
  out.reserve(trace.size() * 80);
  out += kHeaderPrefix;
  out += std::to_string(trace.node().value());
  out += '\n';

  char buf[192];
  for (const auto& r : trace.records()) {
    std::snprintf(buf, sizeof(buf),
                  "%lld %s %u %u %u %u %llu %llu %u %s %zu",
                  static_cast<long long>(r.timestamp.ns()),
                  r.direction == Direction::kSent ? "snd" : "rcv",
                  r.src.value(), static_cast<unsigned>(r.tcp.src_port),
                  r.dst.value(), static_cast<unsigned>(r.tcp.dst_port),
                  static_cast<unsigned long long>(r.tcp.seq),
                  static_cast<unsigned long long>(r.tcp.ack), r.tcp.window,
                  flags_to_text(r.tcp.flags).c_str(), r.payload_size);
    out += buf;
    if (with_payloads && !r.payload.empty()) {
      out += ' ';
      r.payload.for_each_slice([&out](std::span<const std::uint8_t> span) {
        append_hex(out, span);
      });
    }
    out += '\n';
  }
  return out;
}

PacketTrace parse_trace(std::string_view text) {
  std::optional<PacketTrace> trace;

  std::size_t pos = 0;
  std::size_t line_no = 0;
  // Re-throw any record-level error with the 1-based line number so a
  // corrupt multi-megabyte trace points at the offending line instead of
  // making the caller bisect the file.
  const auto fail = [&line_no](const std::string& what) -> std::runtime_error {
    return std::runtime_error("trace parse: line " + std::to_string(line_no) +
                              ": " + what);
  };
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    std::string_view line = text.substr(pos, eol - pos);
    pos = eol + 1;
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (line.empty()) continue;

    if (line[0] == '#') {
      if (line.starts_with(kHeaderPrefix)) {
        if (trace) {
          throw fail("duplicate trace header (files must hold one trace)");
        }
        try {
          const auto id = parse_number<std::uint32_t>(
              line.substr(kHeaderPrefix.size()), "node id");
          trace.emplace(net::NodeId{id});
        } catch (const std::runtime_error& e) {
          throw fail(e.what());
        }
      }
      continue;
    }
    if (!trace) {
      throw fail("record before the '# dyncdn-trace v1 node=' header line");
    }

    const auto tokens = tokenize(line);
    if (tokens.size() != 11 && tokens.size() != 12) {
      throw fail("expected 11 or 12 fields, got " +
                 std::to_string(tokens.size()) + " in: " + std::string(line));
    }

    try {
      PacketRecord r;
      const auto ts = parse_number<std::int64_t>(tokens[0], "ts");
      if (ts < 0) {
        throw std::runtime_error("negative timestamp: " +
                                 std::string(tokens[0]));
      }
      r.timestamp = sim::SimTime::nanoseconds(ts);
      if (tokens[1] == "snd") {
        r.direction = Direction::kSent;
      } else if (tokens[1] == "rcv") {
        r.direction = Direction::kReceived;
      } else {
        throw std::runtime_error("bad direction (want snd|rcv): " +
                                 std::string(tokens[1]));
      }
      r.src = net::NodeId{parse_number<std::uint32_t>(tokens[2], "src")};
      r.tcp.src_port = parse_number<std::uint16_t>(tokens[3], "sport");
      r.dst = net::NodeId{parse_number<std::uint32_t>(tokens[4], "dst")};
      r.tcp.dst_port = parse_number<std::uint16_t>(tokens[5], "dport");
      r.tcp.seq = parse_number<std::uint64_t>(tokens[6], "seq");
      r.tcp.ack = parse_number<std::uint64_t>(tokens[7], "ack");
      r.tcp.window = parse_number<std::uint32_t>(tokens[8], "window");
      r.tcp.flags = flags_from_text(tokens[9]);
      r.payload_size = parse_number<std::size_t>(tokens[10], "paylen");
      if (tokens.size() == 12) {
        auto bytes = parse_hex(tokens[11]);
        if (bytes.size() != r.payload_size) {
          throw std::runtime_error(
              "payload length mismatch: paylen says " +
              std::to_string(r.payload_size) + " bytes, hex encodes " +
              std::to_string(bytes.size()));
        }
        const std::size_t n = bytes.size();
        r.payload = net::PayloadRef{net::make_buffer(std::move(bytes)), 0, n};
      }
      trace->add(std::move(r));
    } catch (const std::runtime_error& e) {
      const std::string_view what = e.what();
      // Avoid double-prefixing errors thrown by the shared helpers.
      throw fail(what.starts_with("trace parse: ")
                     ? std::string(what.substr(13))
                     : std::string(what));
    }
  }

  if (!trace) throw std::runtime_error("trace parse: empty input");
  return std::move(*trace);
}

void save_trace(const PacketTrace& trace, const std::string& path,
                bool with_payloads) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("save_trace: cannot open " + path);
  const std::string text = serialize_trace(trace, with_payloads);
  out.write(text.data(), static_cast<std::streamsize>(text.size()));
  if (!out) throw std::runtime_error("save_trace: write failed: " + path);
}

PacketTrace load_trace(const std::string& path) {
  // Binary .dtrc files are recognized by magic, so every consumer of
  // load_trace (trace_inspect, --diff, examples) reads either format.
  if (SpillReader::is_dtrc_file(path)) return load_trace_dtrc(path);
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_trace: cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return parse_trace(ss.str());
}

}  // namespace dyncdn::capture
