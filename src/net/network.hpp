// The Network owns nodes and links, computes static shortest-path routes,
// and moves packets hop by hop. Topologies here are small (star/tree), but
// routing is a full Dijkstra so arbitrary graphs work.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/link.hpp"
#include "net/node.hpp"
#include "sim/simulator.hpp"

namespace dyncdn::net {

class Network {
 public:
  explicit Network(sim::Simulator& simulator) : simulator_(simulator) {}

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Create a node. Names must be unique; they name RNG streams and traces.
  Node& add_node(const std::string& name, GeoPoint location = {});

  /// Connect two nodes with a bidirectional link (two unidirectional links
  /// sharing `config` but with independent loss-model instances).
  void connect(Node& a, Node& b, const LinkConfig& config);

  /// Connect with asymmetric per-direction configs (a->b, b->a).
  void connect(Node& a, Node& b, const LinkConfig& a_to_b,
               const LinkConfig& b_to_a);

  /// Recompute routing tables. Called automatically on first send after a
  /// topology change; exposed for tests.
  void compute_routes();

  /// Route a packet from `from` towards packet->dst. Drops (with a counter)
  /// if no route exists.
  void route(NodeId from, PacketPtr packet);

  Node& node(NodeId id);
  const Node& node(NodeId id) const;
  Node* find_node(const std::string& name);

  sim::Simulator& simulator() { return simulator_; }

  std::size_t node_count() const { return nodes_.size(); }
  std::uint64_t no_route_drops() const { return no_route_drops_; }

  /// Packets that entered the network (route() calls, local delivery
  /// included) and distinct packet ids issued, for the metrics layer.
  std::uint64_t packets_routed() const { return packets_routed_; }
  std::uint64_t packets_created() const { return next_packet_id_ - 1; }

  /// Element-wise sum of every directed link's counters.
  LinkStats aggregate_link_stats() const;

  /// One-way shortest-path propagation delay between two nodes (sum of link
  /// propagation delays; ignores bandwidth). Infinity if unreachable.
  sim::SimTime path_delay(NodeId a, NodeId b) const;

  /// Link carrying traffic from `a` on the first hop toward `b`, or null.
  Link* first_hop_link(NodeId a, NodeId b);

 private:
  struct Edge {
    NodeId to;
    std::unique_ptr<Link> link;
  };

  sim::Simulator& simulator_;
  std::vector<std::unique_ptr<Node>> nodes_;  // index = id - 1
  std::unordered_map<std::string, NodeId> by_name_;
  std::unordered_map<std::uint32_t, std::vector<Edge>> adjacency_;
  /// next_hop_[src][dst] -> link to use.
  std::unordered_map<std::uint32_t, std::unordered_map<std::uint32_t, Link*>>
      next_hop_;
  bool routes_dirty_ = true;
  std::uint64_t no_route_drops_ = 0;
  std::uint64_t packets_routed_ = 0;
  std::uint64_t next_packet_id_ = 1;

  friend class Node;
};

}  // namespace dyncdn::net
