#include "stats/boxplot.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "stats/descriptive.hpp"

namespace dyncdn::stats {

BoxplotStats boxplot(std::span<const double> xs) {
  BoxplotStats b;
  b.n = xs.size();
  if (xs.empty()) return b;

  std::vector<double> s(xs.begin(), xs.end());
  std::sort(s.begin(), s.end());
  b.q1 = quantile(s, 0.25);
  b.median = quantile(s, 0.5);
  b.q3 = quantile(s, 0.75);
  const double iqr = b.q3 - b.q1;
  const double lo_fence = b.q1 - 1.5 * iqr;
  const double hi_fence = b.q3 + 1.5 * iqr;

  b.whisker_low = s.back();
  b.whisker_high = s.front();
  for (const double x : s) {
    if (x >= lo_fence && x <= hi_fence) {
      b.whisker_low = std::min(b.whisker_low, x);
      b.whisker_high = std::max(b.whisker_high, x);
    } else {
      b.outliers.push_back(x);
    }
  }
  if (b.whisker_low > b.whisker_high) {  // everything was an outlier
    b.whisker_low = b.q1;
    b.whisker_high = b.q3;
  }
  return b;
}

std::string BoxplotStats::to_string() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "med=%.2f [q1=%.2f, q3=%.2f] whiskers=[%.2f, %.2f] outliers=%zu",
                median, q1, q3, whisker_low, whisker_high, outliers.size());
  return buf;
}

std::string ascii_boxplot(const BoxplotStats& b, double axis_min,
                          double axis_max, std::size_t width) {
  std::string row(width, ' ');
  if (b.n == 0 || axis_max <= axis_min || width < 5) return row;
  const auto col = [&](double v) -> std::size_t {
    double f = (v - axis_min) / (axis_max - axis_min);
    f = std::clamp(f, 0.0, 1.0);
    return static_cast<std::size_t>(f * static_cast<double>(width - 1));
  };
  const std::size_t wl = col(b.whisker_low), q1c = col(b.q1),
                    med = col(b.median), q3c = col(b.q3),
                    wh = col(b.whisker_high);
  for (std::size_t i = wl; i <= wh && i < width; ++i) row[i] = '-';
  for (std::size_t i = q1c; i <= q3c && i < width; ++i) row[i] = '=';
  row[wl] = '|';
  row[wh] = '|';
  if (q1c < width) row[q1c] = '[';
  if (q3c < width) row[q3c] = ']';
  if (med < width) row[med] = '#';
  return row;
}

}  // namespace dyncdn::stats
