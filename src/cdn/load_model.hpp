// Server load / service-time models shared by FE servers and BE data
// centers.
//
// The paper attributes Bing's higher, more variable T_static to shared
// (Akamai) front-ends under fluctuating load, and its higher, more variable
// T_dynamic to BE processing load — none of which are observable from the
// outside. We model a server's effective service time as
//
//   t = lognormal(median, sigma)                   per-request noise
//       * (load_mean + load_amplitude * sin(...))  slow background swing
//       * (1 + congestion_per_active * active)     concurrency penalty
//
// Dedicated servers (GoogleLike) use small sigma/amplitude; shared servers
// (BingLike/Akamai) larger.
#pragma once

#include <cmath>
#include <numbers>

#include "sim/random.hpp"
#include "sim/time.hpp"

namespace dyncdn::cdn {

struct LoadModel {
  /// Median service time for the base operation, milliseconds.
  double median_ms = 1.0;
  /// Lognormal sigma of per-request noise.
  double sigma = 0.05;
  /// Background load multiplier: mean and sinusoidal swing.
  double load_mean = 1.0;
  double load_amplitude = 0.0;
  double load_period_s = 120.0;
  double load_phase = 0.0;
  /// Additional multiplier per concurrently active request.
  double congestion_per_active = 0.0;

  /// Deterministic background multiplier at simulated time `now`.
  double background_multiplier(sim::SimTime now) const {
    if (load_amplitude == 0.0) return load_mean;
    const double t = now.to_seconds();
    return load_mean +
           load_amplitude *
               std::sin(2.0 * std::numbers::pi * t / load_period_s +
                        load_phase);
  }

  /// Draw one service time. `active` = requests already in service.
  sim::SimTime draw(sim::RngStream& rng, sim::SimTime now,
                    std::size_t active) const {
    double ms = sigma > 0.0 ? rng.lognormal_median(median_ms, sigma)
                            : median_ms;
    ms *= background_multiplier(now);
    ms *= 1.0 + congestion_per_active * static_cast<double>(active);
    if (ms < 0.01) ms = 0.01;
    return sim::SimTime::from_milliseconds(ms);
  }

  /// Same draw with the base scaled (e.g. per-word processing cost).
  sim::SimTime draw_scaled(sim::RngStream& rng, sim::SimTime now,
                           std::size_t active, double base_ms) const {
    double ms = sigma > 0.0 ? rng.lognormal_median(base_ms, sigma) : base_ms;
    ms *= background_multiplier(now);
    ms *= 1.0 + congestion_per_active * static_cast<double>(active);
    if (ms < 0.01) ms = 0.01;
    return sim::SimTime::from_milliseconds(ms);
  }
};

}  // namespace dyncdn::cdn
