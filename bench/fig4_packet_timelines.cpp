// Figure 4 reproduction: inbound/outbound packet-event timelines for one
// search query as seen from five clients of increasing RTT to the same
// Bing-like FE server (the paper's RTTs: 10.7, 30, 86.6, 160.4, 243.3 ms).
//
// Paper shape: at low RTT, three temporal clusters (handshake, static
// portion, dynamic portion) are clearly separated; as RTT grows, the gap
// between static and dynamic shrinks until the clusters merge.
#include <algorithm>
#include <cstdio>

#include "analysis/boundary.hpp"
#include "analysis/reassembly.hpp"
#include "bench_util.hpp"
#include "search/keywords.hpp"
#include "testbed/experiment.hpp"
#include "testbed/scenario.hpp"

using namespace dyncdn;
using namespace dyncdn::sim::literals;

int main() {
  bench::banner(
      "Figure 4 — packet event timelines vs client RTT (Bing-like)",
      "one query per client; five clients of increasing RTT to a fixed FE");

  testbed::ScenarioOptions opt;
  opt.profile = cdn::bing_like_profile();
  opt.client_count = 160;
  opt.seed = 4;
  testbed::Scenario scenario(opt);
  scenario.warm_up();

  const std::size_t boundary = testbed::discover_boundary(scenario, 0, 0);

  // Pick clients whose RTT to FE 0 best matches the paper's five rows.
  const double targets[] = {10.7, 30.0, 86.6, 160.4, 243.3};
  std::vector<std::size_t> picks;
  for (const double target : targets) {
    std::size_t best = 0;
    double best_err = 1e18;
    for (std::size_t i = 0; i < scenario.clients().size(); ++i) {
      if (std::find(picks.begin(), picks.end(), i) != picks.end()) continue;
      const double rtt = scenario.client_fe_rtt(i, 0).to_milliseconds();
      if (std::abs(rtt - target) < best_err) {
        best_err = std::abs(rtt - target);
        best = i;
      }
    }
    picks.push_back(best);
  }

  search::KeywordCatalog catalog(4);
  const search::Keyword keyword = catalog.figure3_keywords().front();

  for (const std::size_t idx : picks) {
    auto& client = scenario.clients()[idx];
    scenario.connect_client_to_fe(idx, 0);
    client.recorder->clear();

    client.query_client->submit(scenario.fe_endpoint(0), keyword,
                                [](const cdn::QueryResult&) {});
    scenario.run();

    const auto& trace = client.recorder->trace();
    const auto flows = trace.filter_remote_port(80).flows();
    if (flows.empty()) continue;
    const auto timeline =
        analysis::extract_timeline(trace, flows.back(), boundary);

    bench::section(client.vantage.name + "  (RTT " +
                   std::to_string(timeline.rtt().to_milliseconds()) + " ms)");

    // Event row, paper style: elapsed time since SYN, direction, kind.
    const sim::SimTime t0 = timeline.tb;
    const capture::PacketTrace conn = trace.filter_flow(flows.back());
    for (const auto& r : conn.records()) {
      const double at = (r.timestamp - t0).to_milliseconds();
      const char* kind = "data";
      if (r.tcp.flags.syn) kind = "SYN";
      else if (r.tcp.flags.fin) kind = "FIN";
      else if (r.payload_size == 0) kind = "ack";
      std::printf("  %8.1fms %s %-4s %5zuB\n", at,
                  r.direction == capture::Direction::kSent ? "snd" : "rcv",
                  kind, r.payload_size);
    }

    const auto stream = analysis::reassemble(
        conn, flows.back(), capture::Direction::kReceived);
    // Cluster with a gap threshold above the RTT so window stalls do not
    // read as cluster boundaries.
    const sim::SimTime gap =
        std::max(timeline.rtt() * 2, sim::SimTime::milliseconds(40));
    const auto clusters = analysis::temporal_clusters(stream, gap);
    const double tdelta =
        std::max(0.0, (timeline.t5 - timeline.t4).to_milliseconds());
    std::printf("  -> %zu temporal cluster(s), T_delta = %.1f ms\n",
                clusters.size(), tdelta);
  }

  std::printf(
      "\npaper shape: T_delta (static->dynamic gap) shrinks as RTT grows and "
      "the clusters eventually merge.\n");
  return 0;
}
