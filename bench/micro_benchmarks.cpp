// Micro-benchmarks (google-benchmark) of the simulator's hot paths: event
// queue, RNG streams, end-to-end TCP transfer throughput, reassembly and
// the statistics kernels used by every figure.
#include <benchmark/benchmark.h>

#include "analysis/reassembly.hpp"
#include "capture/recorder.hpp"
#include "net/network.hpp"
#include "sim/event_queue.hpp"
#include "sim/simulator.hpp"
#include "stats/descriptive.hpp"
#include "stats/regression.hpp"
#include "tcp/stack.hpp"

namespace {

using namespace dyncdn;
using namespace dyncdn::sim::literals;

void BM_EventQueueScheduleAndRun(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  for (auto _ : state) {
    sim::EventQueue q;
    std::int64_t sum = 0;
    for (std::int64_t i = 0; i < n; ++i) {
      q.schedule(sim::SimTime::microseconds(i % 1000), [&sum, i] { sum += i; });
    }
    while (!q.empty()) q.pop_and_run();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueueScheduleAndRun)->Arg(1000)->Arg(100000);

void BM_EventQueueCancelHeavy(benchmark::State& state) {
  // TCP-like pattern: every event is rescheduled (cancel + schedule).
  const std::int64_t n = state.range(0);
  for (auto _ : state) {
    sim::EventQueue q;
    sim::EventId pending;
    for (std::int64_t i = 0; i < n; ++i) {
      if (pending.valid()) q.cancel(pending);
      pending = q.schedule(sim::SimTime::microseconds(1000 + i), [] {});
    }
    while (!q.empty()) q.pop_and_run();
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueueCancelHeavy)->Arg(100000);

void BM_RngStreamDraws(benchmark::State& state) {
  sim::RngStream rng(42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.lognormal_median(50.0, 0.2));
  }
}
BENCHMARK(BM_RngStreamDraws);

void BM_TcpBulkTransfer(benchmark::State& state) {
  // End-to-end: how fast does the simulator push bytes through a full TCP
  // connection (handshake + slow start + teardown)?
  const std::size_t bytes = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::Simulator simulator(1);
    net::Network network(simulator);
    net::Node& a = network.add_node("a");
    net::Node& b = network.add_node("b");
    net::LinkConfig cfg;
    cfg.propagation_delay = 10_ms;
    cfg.bandwidth_bps = 1e9;
    network.connect(a, b, cfg);
    tcp::TcpStack sa(a), sb(b);
    std::size_t received = 0;
    sb.listen(80, [&received](tcp::TcpSocket& s) {
      tcp::TcpSocket::Callbacks cb;
      cb.on_data = [&received](net::PayloadRef d) { received += d.length; };
      s.set_callbacks(std::move(cb));
    });
    tcp::TcpSocket& c = sa.connect({b.id(), 80}, {});
    c.send(net::PayloadRef{
        net::make_buffer(std::vector<std::uint8_t>(bytes, 0x55)), 0, bytes});
    c.close();
    simulator.run();
    if (received != bytes) state.SkipWithError("transfer incomplete");
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_TcpBulkTransfer)->Arg(100 * 1000)->Arg(1000 * 1000);

void BM_TraceReassembly(benchmark::State& state) {
  // Build one captured transfer, then measure pure analysis cost.
  sim::Simulator simulator(1);
  net::Network network(simulator);
  net::Node& a = network.add_node("a");
  net::Node& b = network.add_node("b");
  net::LinkConfig cfg;
  cfg.propagation_delay = 5_ms;
  network.connect(a, b, cfg);
  capture::RecorderOptions ro;
  ro.capture_payloads = true;
  capture::TraceRecorder recorder(b, simulator, ro);
  tcp::TcpStack sa(a), sb(b);
  sb.listen(80, [](tcp::TcpSocket& s) {
    s.set_callbacks(tcp::TcpSocket::Callbacks{});
  });
  tcp::TcpSocket& c = sa.connect({b.id(), 80}, {});
  const std::size_t bytes = 200 * 1000;
  c.send(net::PayloadRef{
      net::make_buffer(std::vector<std::uint8_t>(bytes, 0x55)), 0, bytes});
  simulator.run();
  const net::FlowId flow = recorder.trace().flows().front();

  for (auto _ : state) {
    auto stream = analysis::reassemble(recorder.trace(), flow,
                                       capture::Direction::kReceived);
    benchmark::DoNotOptimize(stream.length());
  }
}
BENCHMARK(BM_TraceReassembly);

void BM_MovingMedian(benchmark::State& state) {
  std::vector<double> xs(static_cast<std::size_t>(state.range(0)));
  for (std::size_t i = 0; i < xs.size(); ++i) {
    xs[i] = static_cast<double>((i * 7919) % 1000);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::moving_median(xs, 10));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MovingMedian)->Arg(500)->Arg(5000);

void BM_LinearFit(benchmark::State& state) {
  std::vector<double> xs, ys;
  for (int i = 0; i < 1000; ++i) {
    xs.push_back(i);
    ys.push_back(0.08 * i + 260.0 + (i % 13));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::linear_fit(xs, ys));
  }
}
BENCHMARK(BM_LinearFit);

}  // namespace

BENCHMARK_MAIN();
