// Simulated-time representation for the dyncdn discrete-event kernel.
//
// All simulated timestamps and durations are integer nanoseconds wrapped in
// a strong type so that they cannot be silently mixed with raw integers or
// wall-clock time. Arithmetic is checked in debug builds via assertions.
#pragma once

#include <cassert>
#include <compare>
#include <cstdint>
#include <limits>
#include <string>

namespace dyncdn::sim {

/// A point in simulated time, or a duration, in integer nanoseconds.
///
/// SimTime deliberately conflates "time point" and "duration": the kernel
/// only ever needs the affine operations (point + duration, point - point),
/// and a single type keeps the event-queue hot path trivial. Never use
/// floating point inside the kernel; convert at the edges with to_seconds().
class SimTime {
 public:
  constexpr SimTime() = default;

  /// Construct from raw nanoseconds. Prefer the named factories below.
  constexpr explicit SimTime(std::int64_t ns) : ns_(ns) {}

  static constexpr SimTime zero() { return SimTime{0}; }
  static constexpr SimTime nanoseconds(std::int64_t v) { return SimTime{v}; }
  static constexpr SimTime microseconds(std::int64_t v) {
    return SimTime{v * 1'000};
  }
  static constexpr SimTime milliseconds(std::int64_t v) {
    return SimTime{v * 1'000'000};
  }
  static constexpr SimTime seconds(std::int64_t v) {
    return SimTime{v * 1'000'000'000};
  }

  /// Largest representable time; used as "never" by timers.
  static constexpr SimTime infinity() {
    return SimTime{std::numeric_limits<std::int64_t>::max()};
  }

  /// Convert a floating-point second count (e.g. from a distribution draw)
  /// into SimTime, rounding to the nearest nanosecond.
  static constexpr SimTime from_seconds(double s) {
    return SimTime{static_cast<std::int64_t>(s * 1e9 + (s >= 0 ? 0.5 : -0.5))};
  }
  static constexpr SimTime from_milliseconds(double ms) {
    return from_seconds(ms * 1e-3);
  }

  constexpr std::int64_t ns() const { return ns_; }
  constexpr double to_seconds() const { return static_cast<double>(ns_) * 1e-9; }
  constexpr double to_milliseconds() const {
    return static_cast<double>(ns_) * 1e-6;
  }
  constexpr double to_microseconds() const {
    return static_cast<double>(ns_) * 1e-3;
  }

  constexpr bool is_infinite() const { return *this == infinity(); }

  friend constexpr auto operator<=>(SimTime, SimTime) = default;

  constexpr SimTime operator+(SimTime rhs) const {
    return SimTime{ns_ + rhs.ns_};
  }
  constexpr SimTime operator-(SimTime rhs) const {
    return SimTime{ns_ - rhs.ns_};
  }
  constexpr SimTime& operator+=(SimTime rhs) {
    ns_ += rhs.ns_;
    return *this;
  }
  constexpr SimTime& operator-=(SimTime rhs) {
    ns_ -= rhs.ns_;
    return *this;
  }
  constexpr SimTime operator*(std::int64_t k) const { return SimTime{ns_ * k}; }
  constexpr SimTime operator/(std::int64_t k) const { return SimTime{ns_ / k}; }

  /// Scale by a double (used by RTT estimators); rounds to nearest ns.
  constexpr SimTime scaled(double f) const {
    return from_seconds(to_seconds() * f);
  }

  /// Human-readable rendering with an adaptive unit, e.g. "12.5ms".
  std::string to_string() const;

 private:
  std::int64_t ns_ = 0;
};

inline constexpr SimTime operator*(std::int64_t k, SimTime t) { return t * k; }

/// Convenience literals: 10_ms, 250_us, 3_s.
namespace literals {
constexpr SimTime operator""_ns(unsigned long long v) {
  return SimTime::nanoseconds(static_cast<std::int64_t>(v));
}
constexpr SimTime operator""_us(unsigned long long v) {
  return SimTime::microseconds(static_cast<std::int64_t>(v));
}
constexpr SimTime operator""_ms(unsigned long long v) {
  return SimTime::milliseconds(static_cast<std::int64_t>(v));
}
constexpr SimTime operator""_s(unsigned long long v) {
  return SimTime::seconds(static_cast<std::int64_t>(v));
}
}  // namespace literals

}  // namespace dyncdn::sim
