// FE backend-connection-pool behaviour: growth on demand, the
// max_backend_connections cap with FIFO queueing, and pool reuse.
#include <gtest/gtest.h>

#include <memory>

#include "cdn/backend.hpp"
#include "cdn/client.hpp"
#include "cdn/deployment.hpp"
#include "cdn/frontend.hpp"
#include "net/network.hpp"
#include "search/content_model.hpp"
#include "sim/simulator.hpp"

namespace dyncdn::cdn {
namespace {

using sim::SimTime;
using namespace dyncdn::sim::literals;

struct PoolFixture {
  explicit PoolFixture(std::size_t max_conns, double proc_ms = 80.0) {
    simulator = std::make_unique<sim::Simulator>(6);
    network = std::make_unique<net::Network>(*simulator);
    content = std::make_unique<search::ContentModel>(
        search::ContentProfile{}, "PoolTest");

    client_node = &network->add_node("client");
    fe_node = &network->add_node("fe");
    be_node = &network->add_node("be");
    net::LinkConfig access;
    access.propagation_delay = 4_ms;
    network->connect(*client_node, *fe_node, access);
    net::LinkConfig internal;
    internal.propagation_delay = 5_ms;
    network->connect(*fe_node, *be_node, internal);

    const ServiceProfile profile = google_like_profile();
    BackendDataCenter::Config be_cfg;
    be_cfg.processing.base_ms = proc_ms;  // slow: queries overlap
    be_cfg.processing.per_word_ms = 0;
    be_cfg.processing.load.sigma = 0.0;
    be_cfg.tcp = profile.internal_tcp;
    backend = std::make_unique<BackendDataCenter>(*be_node, *content, be_cfg);

    FrontEndServer::Config fe_cfg;
    fe_cfg.backend = backend->fetch_endpoint();
    fe_cfg.service.median_ms = 1.0;
    fe_cfg.service.sigma = 0.0;
    fe_cfg.client_tcp = profile.client_tcp;
    fe_cfg.backend_tcp = profile.internal_tcp;
    fe_cfg.max_backend_connections = max_conns;
    frontend = std::make_unique<FrontEndServer>(*fe_node, *content,
                                                std::move(fe_cfg));
    client = std::make_unique<QueryClient>(*client_node, profile.client_tcp);
    simulator->run_until(simulator->now() + 3_s);
  }

  /// Fire `n` concurrent queries; returns how many completed successfully.
  int burst(int n) {
    int ok = 0;
    for (int i = 0; i < n; ++i) {
      client->submit(frontend->client_endpoint(),
                     search::Keyword{"burst " + std::to_string(i),
                                     search::KeywordClass::kPopular, 500},
                     [&](const QueryResult& r) {
                       if (!r.failed) ++ok;
                     });
    }
    simulator->run();
    return ok;
  }

  std::unique_ptr<sim::Simulator> simulator;
  std::unique_ptr<net::Network> network;
  std::unique_ptr<search::ContentModel> content;
  net::Node* client_node = nullptr;
  net::Node* fe_node = nullptr;
  net::Node* be_node = nullptr;
  std::unique_ptr<BackendDataCenter> backend;
  std::unique_ptr<FrontEndServer> frontend;
  std::unique_ptr<QueryClient> client;
};

TEST(BackendPool, GrowsOnDemandWhenUnbounded) {
  PoolFixture f(/*max_conns=*/0);
  EXPECT_EQ(f.frontend->backend_pool_size(), 1u);  // the eager warm conn
  EXPECT_EQ(f.burst(8), 8);
  // Concurrent fetches forced extra connections.
  EXPECT_GT(f.frontend->backend_pool_size(), 1u);
  EXPECT_LE(f.frontend->backend_pool_size(), 8u);
}

TEST(BackendPool, CapBoundsPoolAndQueuesFetches) {
  PoolFixture f(/*max_conns=*/2);
  EXPECT_EQ(f.burst(10), 10);  // everything completes, just later
  EXPECT_LE(f.frontend->backend_pool_size(), 2u);
  EXPECT_EQ(f.backend->queries_served(), 10u);
}

TEST(BackendPool, CapOneSerializesFetches) {
  PoolFixture f(/*max_conns=*/1, /*proc_ms=*/50.0);
  std::vector<double> completions;
  for (int i = 0; i < 4; ++i) {
    f.client->submit(f.frontend->client_endpoint(),
                     search::Keyword{"serial " + std::to_string(i),
                                     search::KeywordClass::kPopular, 500},
                     [&](const QueryResult& r) {
                       ASSERT_FALSE(r.failed);
                       completions.push_back(
                           r.complete.to_milliseconds());
                     });
  }
  f.simulator->run();
  ASSERT_EQ(completions.size(), 4u);
  // Fetches went one at a time: completions are spread by >= T_proc each.
  std::sort(completions.begin(), completions.end());
  for (std::size_t i = 1; i < completions.size(); ++i) {
    EXPECT_GE(completions[i] - completions[i - 1], 45.0) << i;
  }
}

TEST(BackendPool, PooledConnectionsAreReusedAcrossBursts) {
  PoolFixture f(/*max_conns=*/0);
  EXPECT_EQ(f.burst(6), 6);
  const std::size_t pool_after_first = f.frontend->backend_pool_size();
  EXPECT_EQ(f.burst(6), 6);
  // Second burst of equal size fits in the existing pool.
  EXPECT_EQ(f.frontend->backend_pool_size(), pool_after_first);
}

TEST(BackendPool, SequentialQueriesNeedOnlyOneConnection) {
  PoolFixture f(/*max_conns=*/0);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(f.burst(1), 1);
  }
  EXPECT_EQ(f.frontend->backend_pool_size(), 1u);
}

}  // namespace
}  // namespace dyncdn::cdn
