#include "obs/attribution.hpp"

#include <cinttypes>
#include <cstdio>

namespace dyncdn::obs {

namespace {

constexpr double kNsPerMs = 1e6;

void append_double(std::string& out, double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out += buf;
}

}  // namespace

const std::vector<std::string>& QueryAttribution::component_names() {
  static const std::vector<std::string> names = {
      "attr_dns_ms",      "attr_connect_ms",  "attr_ack_ms",
      "attr_uplink_ms",   "attr_fe_wait_ms",  "attr_fe_service_ms",
      "attr_fe_fetch_ms", "attr_delivery_ms", "attr_t_dynamic_ms",
  };
  return names;
}

bool QueryAttribution::observe(const Sample& s) {
  if (s.t1 < 0 || s.t2 < 0 || s.t5 < 0) {
    registry_.add("attr_skipped", 1);
    return false;
  }
  // Collapse missing anchors onto their predecessor so the telescoping
  // sum is exact whether or not the FE-side spans exist (cache hits,
  // DYNCDN_OBS=OFF traces, untraced FEs).
  const std::int64_t a0 = s.t1;
  const std::int64_t a1 = s.fe_recv >= 0 ? s.fe_recv : a0;
  const std::int64_t a2 = s.fetch_start >= 0 ? s.fetch_start : a1;
  const std::int64_t a3 = s.fetch_first_byte >= 0 ? s.fetch_first_byte : a2;

  const std::int64_t uplink = a1 - a0;
  const std::int64_t fe_wait = a2 - a1;
  const std::int64_t fe_fetch = a3 - a2;
  const std::int64_t delivery = s.t5 - a3;
  const std::int64_t ack = s.t2 - s.t1;
  const std::int64_t t_dynamic = s.t5 - s.t2;

  const bool ordered = uplink >= 0 && fe_wait >= 0 && fe_fetch >= 0 &&
                       delivery >= 0 && ack >= 0 && t_dynamic >= 0;
  // Exact integer telescoping identity; a failure here means the span
  // events are inconsistent, not a rounding artifact.
  const bool telescopes =
      (uplink + fe_wait + fe_fetch + delivery) - ack == t_dynamic;
  if (!ordered || !telescopes) {
    registry_.add("attr_reconcile_failures", 1);
    return false;
  }

  registry_.add("attr_queries", 1);
  registry_.observe("attr_uplink_ms", static_cast<double>(uplink) / kNsPerMs);
  registry_.observe("attr_fe_wait_ms",
                    static_cast<double>(fe_wait) / kNsPerMs);
  registry_.observe("attr_fe_fetch_ms",
                    static_cast<double>(fe_fetch) / kNsPerMs);
  registry_.observe("attr_delivery_ms",
                    static_cast<double>(delivery) / kNsPerMs);
  registry_.observe("attr_ack_ms", static_cast<double>(ack) / kNsPerMs);
  registry_.observe("attr_t_dynamic_ms",
                    static_cast<double>(t_dynamic) / kNsPerMs);
  if (s.tb >= 0 && s.t_synack >= s.tb) {
    registry_.observe("attr_connect_ms",
                      static_cast<double>(s.t_synack - s.tb) / kNsPerMs);
  }
  if (s.fe_service_ns >= 0) {
    registry_.observe("attr_fe_service_ms",
                      static_cast<double>(s.fe_service_ns) / kNsPerMs);
  }
  return true;
}

void QueryAttribution::observe_dns_ms(double ms) {
  registry_.observe("attr_dns_ms", ms);
}

std::string QueryAttribution::to_json() const {
  std::string out = "{\"queries\":";
  append_u64(out, queries());
  out += ",\"reconcile_failures\":";
  append_u64(out, reconcile_failures());
  out += ",\"skipped\":";
  append_u64(out, skipped());
  out += ",\"components\":{";
  bool first = true;
  // Every component appears even with zero samples (e.g. attr_dns_ms in a
  // fixed-FE campaign, which never resolves) so the schema is stable for
  // bench_diff and downstream parsers.
  for (const std::string& name : component_names()) {
    const Histogram* h = registry_.histogram(name);
    if (!first) out.push_back(',');
    first = false;
    out.push_back('"');
    out += name;
    out += "\":{\"count\":";
    append_u64(out, h != nullptr ? h->count() : 0);
    out += ",\"mean\":";
    append_double(out, h != nullptr && h->count()
                           ? h->sum() / static_cast<double>(h->count())
                           : 0.0);
    out += ",\"p50\":";
    append_double(out, h != nullptr ? h->quantile(0.50) : 0.0);
    out += ",\"p99\":";
    append_double(out, h != nullptr ? h->quantile(0.99) : 0.0);
    out += ",\"p999\":";
    append_double(out, h != nullptr ? h->quantile(0.999) : 0.0);
    out += ",\"min\":";
    append_double(out, h != nullptr ? h->min() : 0.0);
    out += ",\"max\":";
    append_double(out, h != nullptr ? h->max() : 0.0);
    out += "}";
  }
  out += "}}";
  return out;
}

}  // namespace dyncdn::obs
