// Failure injection: the CDN layer must degrade cleanly — failed queries
// report failure (never hang, never crash), servers survive malformed
// input, and the FE recovers after its BE path heals.
#include <gtest/gtest.h>

#include <memory>

#include "cdn/backend.hpp"
#include "cdn/client.hpp"
#include "cdn/deployment.hpp"
#include "cdn/frontend.hpp"
#include "net/network.hpp"
#include "search/content_model.hpp"
#include "sim/simulator.hpp"
#include "tcp/stack.hpp"

namespace dyncdn::cdn {
namespace {

using sim::SimTime;
using namespace dyncdn::sim::literals;

/// Loss model with an external kill switch: drops everything while the
/// shared flag is set. Emulates a link blackout.
class Blackout final : public net::LossModel {
 public:
  explicit Blackout(std::shared_ptr<bool> active)
      : active_(std::move(active)) {}
  bool should_drop(sim::RngStream&) override { return *active_; }
  std::string describe() const override { return "blackout"; }

 private:
  std::shared_ptr<bool> active_;
};

struct FailureFixture {
  FailureFixture()
      : simulator(5),
        network(simulator),
        content(search::ContentProfile{}, "FailureTest"),
        blackout(std::make_shared<bool>(false)) {
    client_node = &network.add_node("client");
    fe_node = &network.add_node("fe");
    be_node = &network.add_node("be");

    net::LinkConfig access;
    access.propagation_delay = 8_ms;
    network.connect(*client_node, *fe_node, access);

    net::LinkConfig internal;
    internal.propagation_delay = 5_ms;
    internal.loss_factory = [flag = blackout] {
      return std::make_unique<Blackout>(flag);
    };
    network.connect(*fe_node, *be_node, internal);

    const ServiceProfile profile = google_like_profile();
    BackendDataCenter::Config be_cfg;
    be_cfg.processing = profile.processing;
    be_cfg.processing.load.sigma = 0.0;
    be_cfg.tcp = profile.internal_tcp;
    // Fail fast so blackout tests converge quickly.
    be_cfg.tcp.max_retries = 3;
    backend = std::make_unique<BackendDataCenter>(*be_node, content, be_cfg);

    FrontEndServer::Config fe_cfg;
    fe_cfg.backend = backend->fetch_endpoint();
    fe_cfg.service.median_ms = 2.0;
    fe_cfg.service.sigma = 0.0;
    fe_cfg.client_tcp = profile.client_tcp;
    fe_cfg.backend_tcp = profile.internal_tcp;
    fe_cfg.backend_tcp.max_retries = 3;
    frontend = std::make_unique<FrontEndServer>(*fe_node, content, fe_cfg);

    client = std::make_unique<QueryClient>(*client_node, profile.client_tcp);
    simulator.run_until(simulator.now() + 3_s);
  }

  QueryResult query() {
    QueryResult out;
    client->submit(frontend->client_endpoint(),
                   search::Keyword{"failure probe",
                                   search::KeywordClass::kPopular, 500},
                   [&](const QueryResult& r) { out = r; });
    simulator.run();
    return out;
  }

  sim::Simulator simulator;
  net::Network network;
  search::ContentModel content;
  std::shared_ptr<bool> blackout;
  net::Node* client_node = nullptr;
  net::Node* fe_node = nullptr;
  net::Node* be_node = nullptr;
  std::unique_ptr<BackendDataCenter> backend;
  std::unique_ptr<FrontEndServer> frontend;
  std::unique_ptr<QueryClient> client;
};

TEST(FailureInjection, BaselineSucceeds) {
  FailureFixture f;
  const QueryResult r = f.query();
  EXPECT_FALSE(r.failed) << r.failure_reason;
  EXPECT_EQ(r.status, 200);
}

TEST(FailureInjection, BackendBlackoutFailsQueryCleanly) {
  FailureFixture f;
  *f.blackout = true;
  const QueryResult r = f.query();  // must terminate, not hang
  EXPECT_TRUE(r.failed);
  EXPECT_FALSE(r.failure_reason.empty());
  EXPECT_TRUE(f.simulator.idle());
}

TEST(FailureInjection, FrontendRecoversAfterBlackout) {
  FailureFixture f;
  *f.blackout = true;
  const QueryResult during = f.query();
  EXPECT_TRUE(during.failed);

  *f.blackout = false;
  // Give the FE a moment; its next dispatch opens a fresh connection.
  f.simulator.run_until(f.simulator.now() + 2_s);
  const QueryResult after = f.query();
  EXPECT_FALSE(after.failed) << after.failure_reason;
  EXPECT_EQ(after.status, 200);
}

TEST(FailureInjection, RepeatedBlackoutCyclesStayConsistent) {
  FailureFixture f;
  for (int cycle = 0; cycle < 3; ++cycle) {
    *f.blackout = true;
    EXPECT_TRUE(f.query().failed) << "cycle " << cycle;
    *f.blackout = false;
    f.simulator.run_until(f.simulator.now() + 2_s);
    EXPECT_FALSE(f.query().failed) << "cycle " << cycle;
  }
}

TEST(FailureInjection, MalformedClientRequestGetsReset) {
  FailureFixture f;
  bool closed = false, connected = false;
  tcp::TcpSocket::Callbacks cb;
  cb.on_connected = [&] { connected = true; };
  cb.on_closed = [&] { closed = true; };
  tcp::TcpSocket& s = f.client->stack().connect(
      f.frontend->client_endpoint(), std::move(cb));
  s.send_text("THIS IS NOT HTTP\r\n\r\n");
  f.simulator.run();
  EXPECT_TRUE(connected);
  EXPECT_TRUE(closed);  // FE aborted us instead of crashing
  // The FE keeps serving well-formed clients afterwards.
  EXPECT_FALSE(f.query().failed);
}

TEST(FailureInjection, MalformedDirectRequestGetsReset) {
  FailureFixture f;
  bool closed = false;
  tcp::TcpSocket::Callbacks cb;
  cb.on_closed = [&] { closed = true; };
  tcp::TcpSocket& s = f.client->stack().connect(
      f.backend->direct_endpoint(), std::move(cb));
  s.send_text("garbage without structure");
  // Incomplete head: parser waits; push the terminator to trigger parsing.
  f.simulator.run();
  s.send_text("\r\n\r\n");
  f.simulator.run();
  EXPECT_TRUE(closed);
}

TEST(FailureInjection, ClientAbortMidResponseLeavesServersHealthy) {
  FailureFixture f;
  // Start a query, then kill the client connection the moment data flows.
  tcp::TcpSocket* client_sock = nullptr;
  tcp::TcpSocket::Callbacks cb;
  bool aborted = false;
  cb.on_data = [&](net::PayloadRef) {
    if (!aborted && client_sock != nullptr) {
      aborted = true;
      client_sock->abort();
    }
  };
  tcp::TcpSocket& s = f.client->stack().connect(
      f.frontend->client_endpoint(), std::move(cb));
  client_sock = &s;
  http::HttpRequest req;
  req.target = "/search?q=abort+me&rank=5&cls=popular";
  req.set_header("Connection", "close");
  s.send_text(req.serialize());
  f.simulator.run();
  EXPECT_TRUE(aborted);

  // FE and BE are unharmed; the next query succeeds.
  const QueryResult r = f.query();
  EXPECT_FALSE(r.failed) << r.failure_reason;
  EXPECT_TRUE(f.simulator.idle());
}

TEST(FailureInjection, ManyFailuresThenRecoveryUnderLoad) {
  FailureFixture f;
  *f.blackout = true;
  int failed = 0;
  for (int i = 0; i < 5; ++i) {
    f.client->submit(f.frontend->client_endpoint(),
                     search::Keyword{"q" + std::to_string(i),
                                     search::KeywordClass::kPopular, 500},
                     [&](const QueryResult& r) {
                       if (r.failed) ++failed;
                     });
  }
  f.simulator.run();
  EXPECT_EQ(failed, 5);

  *f.blackout = false;
  f.simulator.run_until(f.simulator.now() + 2_s);
  int ok = 0;
  for (int i = 0; i < 5; ++i) {
    f.client->submit(f.frontend->client_endpoint(),
                     search::Keyword{"r" + std::to_string(i),
                                     search::KeywordClass::kPopular, 500},
                     [&](const QueryResult& r) {
                       if (!r.failed) ++ok;
                     });
  }
  f.simulator.run();
  EXPECT_EQ(ok, 5);
}

}  // namespace
}  // namespace dyncdn::cdn
