#include "analysis/span_attribution.hpp"

#include <algorithm>
#include <map>
#include <string_view>

#include "analysis/reassembly.hpp"
#include "analysis/timeline.hpp"

namespace dyncdn::analysis {

namespace {

const obs::ArgValue* find_arg(const std::vector<obs::Arg>& args,
                              std::string_view key) {
  for (const obs::Arg& a : args) {
    if (a.key == key) return &a.value;
  }
  return nullptr;
}

bool has_failed_arg(const std::vector<obs::Arg>& args) {
  const obs::ArgValue* v = find_arg(args, "failed");
  return v != nullptr && v->type == obs::ArgValue::Type::kInt && v->i != 0;
}

std::string string_arg(const std::vector<obs::Arg>& args,
                       std::string_view key) {
  const obs::ArgValue* v = find_arg(args, key);
  return v != nullptr && v->type == obs::ArgValue::Type::kString ? v->s
                                                                 : std::string{};
}

}  // namespace

std::size_t boundary_from_spans(const std::vector<obs::SpanRecord>& spans) {
  // All FEs of a service flush the same static portion, so any stamped
  // event would do; max keeps the answer deterministic if a future
  // scenario ever mixes prefix sizes (the common prefix can only shrink,
  // never grow, so max errs toward the serial discovery's value).
  std::int64_t best = 0;
  for (const obs::SpanRecord& span : spans) {
    for (const obs::SpanEvent& ev : span.events) {
      if (ev.name != "static_flush") continue;
      const obs::ArgValue* bytes = find_arg(ev.args, "bytes");
      if (bytes != nullptr && bytes->type == obs::ArgValue::Type::kInt) {
        best = std::max(best, bytes->i);
      }
    }
  }
  return best > 0 ? static_cast<std::size_t>(best) : 0;
}

SpanAttributionResult extract_attribution(
    const std::vector<obs::SpanRecord>& spans, std::size_t boundary) {
  SpanAttributionResult result;

  std::map<obs::SpanId, std::vector<std::size_t>> children;
  for (std::size_t i = 0; i < spans.size(); ++i) {
    if (spans[i].parent != obs::kNoSpan) {
      children[spans[i].parent].push_back(i);
    }
  }

  for (std::size_t i = 0; i < spans.size(); ++i) {
    const obs::SpanRecord& query = spans[i];
    if (query.name == "dns.resolve") {
      if (!query.open && !has_failed_arg(query.args)) {
        result.dns_ms.push_back(
            static_cast<double>((query.end - query.start).ns()) /
            1e6);
      }
      continue;
    }
    if (query.name != "query") continue;

    AttributedQuery q;
    q.node = string_arg(query.args, "node");
    q.keyword = string_arg(query.args, "keyword");

    // BFS from the query span: parent-before-child, input order among
    // siblings — deterministic because the span list itself is.
    q.subtree.push_back(i);
    for (std::size_t head = 0; head < q.subtree.size(); ++head) {
      const auto it = children.find(spans[q.subtree[head]].id);
      if (it == children.end()) continue;
      q.subtree.insert(q.subtree.end(), it->second.begin(), it->second.end());
    }

    const obs::SpanRecord* flow = nullptr;
    const obs::SpanRecord* fe_request = nullptr;
    const obs::SpanRecord* fe_service = nullptr;
    const obs::SpanRecord* fe_fetch = nullptr;
    for (const std::size_t idx : q.subtree) {
      const obs::SpanRecord& s = spans[idx];
      if (flow == nullptr && s.name == "tcp.flow") flow = &s;
      if (fe_request == nullptr && s.name == "fe.request") fe_request = &s;
      if (fe_service == nullptr && s.name == "fe.service") fe_service = &s;
      if (fe_fetch == nullptr && s.name == "fe.fetch") fe_fetch = &s;
    }

    if (has_failed_arg(query.args) || flow == nullptr) {
      ++result.skipped;
      continue;
    }

    // Control events from the flow span, rx segments for the data path.
    obs::QueryAttribution::Sample& s = q.sample;
    std::vector<ReassembledStream::Segment> segments;
    for (const obs::SpanEvent& ev : flow->events) {
      if (ev.name == "syn" && s.tb < 0) {
        s.tb = ev.at.ns();
      } else if (ev.name == "synack" && s.t_synack < 0) {
        s.t_synack = ev.at.ns();
      } else if (ev.name == "tx_data" && s.t1 < 0) {
        s.t1 = ev.at.ns();
      } else if (ev.name == "ack_data" && s.t2 < 0) {
        s.t2 = ev.at.ns();
      } else if (ev.name == "rx") {
        const obs::ArgValue* off = find_arg(ev.args, "off");
        const obs::ArgValue* len = find_arg(ev.args, "len");
        if (off != nullptr && len != nullptr && off->i >= 0 && len->i > 0) {
          segments.push_back(ReassembledStream::Segment{
              static_cast<std::size_t>(off->i),
              static_cast<std::size_t>(len->i), ev.at});
        }
      }
    }
    if (s.t1 < 0 || s.t2 < 0 || segments.empty()) {
      ++result.skipped;
      continue;
    }

    // t5 via the exact capture-analysis code path: reassemble the rx
    // segments and run the shared timeline finisher. This is what makes
    // the attribution sum agree with packet-derived T_dynamic bit for bit.
    QueryTimeline tl;
    tl.tb = sim::SimTime::nanoseconds(s.tb >= 0 ? s.tb : 0);
    tl.t_synack = sim::SimTime::nanoseconds(s.t_synack >= 0 ? s.t_synack : 0);
    tl.t1 = sim::SimTime::nanoseconds(s.t1);
    tl.t2 = sim::SimTime::nanoseconds(s.t2);
    const ReassembledStream stream =
        ReassembledStream::from_segments(std::move(segments));
    finish_timeline_from_stream(tl, stream, boundary);
    if (!tl.valid) {
      ++result.skipped;
      continue;
    }
    s.t5 = tl.t5.ns();

    if (fe_request != nullptr) s.fe_recv = fe_request->start.ns();
    if (fe_fetch != nullptr) s.fetch_start = fe_fetch->start.ns();
    if (fe_fetch != nullptr) {
      for (const obs::SpanEvent& ev : fe_fetch->events) {
        if (ev.name == "first_byte") {
          s.fetch_first_byte = ev.at.ns();
          break;
        }
      }
    }
    if (fe_service != nullptr && !fe_service->open) {
      s.fe_service_ns = (fe_service->end - fe_service->start).ns();
    }

    q.ok = true;
    q.end_ns = s.t5;
    q.t_dynamic_ms = static_cast<double>(s.t5 - s.t2) / 1e6;
    result.queries.push_back(std::move(q));
  }

  std::sort(result.queries.begin(), result.queries.end(),
            [](const AttributedQuery& a, const AttributedQuery& b) {
              if (a.end_ns != b.end_ns) return a.end_ns < b.end_ns;
              if (a.node != b.node) return a.node < b.node;
              return a.keyword < b.keyword;
            });
  return result;
}

void reduce_attribution(const std::vector<obs::SpanRecord>& spans,
                        std::size_t boundary,
                        obs::QueryAttribution& attribution,
                        obs::FlightRecorder* flight) {
  const SpanAttributionResult result = extract_attribution(spans, boundary);
  for (const double ms : result.dns_ms) attribution.observe_dns_ms(ms);
  for (std::size_t i = 0; i < result.skipped; ++i) attribution.skip();
  for (const AttributedQuery& q : result.queries) {
    attribution.observe(q.sample);
    if (flight != nullptr) {
      obs::FlightRecorder::Entry entry;
      entry.node = q.node;
      entry.keyword = q.keyword;
      entry.t_dynamic_ms = q.t_dynamic_ms;
      entry.end_ns = q.end_ns;
      entry.spans.reserve(q.subtree.size());
      for (const std::size_t idx : q.subtree) {
        entry.spans.push_back(spans[idx]);
      }
      flight->observe(std::move(entry));
    }
  }
}

}  // namespace dyncdn::analysis
