// Compact binary flight recorder: a byte-budgeted ring of encoded span
// records. Always-on deployments size it to a few hundred kB and dump it
// post-mortem; encoding keeps only the fields needed to reconstruct a
// timeline (ids, replica, name, category, start/end), dropping args and
// events to stay compact.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

namespace dyncdn::obs {

struct SpanRecord;

class RingBuffer {
 public:
  explicit RingBuffer(std::size_t capacity_bytes)
      : capacity_(capacity_bytes) {}

  // Append a closed span; evicts oldest records to respect the budget.
  // A record larger than the whole budget is dropped (counted).
  void append(const SpanRecord& span);

  std::size_t capacity_bytes() const { return capacity_; }
  std::size_t used_bytes() const { return used_; }
  std::uint64_t appended() const { return appended_; }
  std::uint64_t evicted() const { return evicted_; }
  std::size_t record_count() const { return records_.size(); }

  // Decode the retained records, oldest first. Dropped fields (args,
  // events) come back empty; `open` is always false.
  std::vector<SpanRecord> decode_all() const;

  // Concatenated wire encoding: an 8-byte header ("DCOBSR01") followed by
  // the retained records. load() reverses dump(); returns nullopt on a
  // malformed buffer.
  std::string dump() const;
  static std::optional<std::vector<SpanRecord>> load(
      const std::string& bytes);

  static std::string encode(const SpanRecord& span);

 private:
  std::size_t capacity_;
  std::size_t used_ = 0;
  std::uint64_t appended_ = 0;
  std::uint64_t evicted_ = 0;
  std::deque<std::string> records_;  // each element: one encoded record
};

}  // namespace dyncdn::obs
