// Experiment runners: drive the paper's measurement campaigns through a
// Scenario and run the full capture -> reassembly -> boundary -> timeline
// -> inference pipeline, exactly as the paper did offline on tcpdump data.
//
//   Datasets A  (run_default_fe_experiment): every vantage point queries
//               its default (DNS-nearest) FE repeatedly.
//   Datasets B  (run_fixed_fe_experiment): every vantage point queries one
//               fixed FE server.
//   Caching     (run_caching_experiment): same-query-repeated vs
//               distinct-queries against a fixed FE.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "core/cache_detector.hpp"
#include "core/inference.hpp"
#include "core/timings.hpp"
#include "obs/attribution.hpp"
#include "obs/flight.hpp"
#include "parallel/replica.hpp"
#include "search/keywords.hpp"
#include "testbed/scenario.hpp"

namespace dyncdn::testbed {

/// Discover the static/dynamic boundary the way the paper does: submit
/// `num_keywords` distinct queries from one client to one FE with payload
/// capture enabled, reassemble the response streams, and take their
/// longest common prefix. Leaves the client's recorder cleared and payload
/// capture restored to its prior setting.
std::size_t discover_boundary(Scenario& scenario, std::size_t client_index,
                              std::size_t fe_index,
                              std::size_t num_keywords = 6);

struct ExperimentOptions {
  std::size_t reps_per_node = 25;
  sim::SimTime interval = sim::SimTime::seconds(2);
  /// Per-client start stagger so vantage points don't fire synchronously.
  sim::SimTime stagger = sim::SimTime::milliseconds(73);
  /// Keywords cycled across repetitions (single-element = fixed query).
  std::vector<search::Keyword> keywords;

  /// When set, `keywords` is ignored and each query draws from a
  /// Zipf(alpha) popularity distribution over a synthesized catalog —
  /// the realistic mixed workload of Datasets A.
  struct ZipfWorkload {
    std::size_t catalog_size = 500;
    double alpha = 1.0;
  };
  std::optional<ZipfWorkload> zipf;

  /// Slow-query flight recorder configuration (only consulted when the
  /// scenario traces: the recorder is fed from the span forest).
  obs::FlightRecorder::Options flight;
};

struct ExperimentResult {
  std::size_t boundary = 0;
  /// Fetch-log entries on client 0's target FE that belong to the
  /// boundary-discovery phase (tests slice ground-truth logs past these).
  std::size_t discovery_fetches = 0;
  /// One aggregate per vantage point, aligned with scenario.clients().
  std::vector<core::NodeAggregate> per_node;
  /// Raw per-query timings per vantage point (same alignment).
  std::vector<std::vector<core::QueryTimings>> per_node_timings;

  /// Operational counters + per-query latency histograms. Sharded runs
  /// merge shard registries in shard-index order; the merge rules
  /// (counters add, gauges max, histogram bins add) make the result
  /// thread-count invariant.
  obs::MetricsRegistry metrics;

  /// Event-kernel and conservative-window counters
  /// (Scenario::collect_kernel_metrics). Kept apart from `metrics` because
  /// they legitimately differ with the shard layout, while `metrics` is
  /// byte-identical at any shard/thread count.
  obs::MetricsRegistry kernel_metrics;

  /// Trace session of the run (merged across shards, stamped with replica
  /// ids). Null unless ScenarioOptions::enable_tracing.
  std::shared_ptr<obs::TraceSession> trace;

  /// Sim-time metric series (empty unless ScenarioOptions::ts_interval).
  /// Replica merges align by absolute tick and sum, so the deterministic
  /// exports are byte-identical at any thread count.
  obs::TimeSeriesSampler timeseries;

  /// Per-component latency attribution over the span forest (empty unless
  /// the scenario traces). Fed in deterministic completion order.
  obs::QueryAttribution attribution;

  /// Slow-query flight recorder (empty unless the scenario traces).
  obs::FlightRecorder flight;

  /// Work-stealing executor counters from the replica engine; filled by
  /// run_sharded, default for serial runs. Runtime telemetry only.
  parallel::ExecutorStats executor_stats;

  /// All timings flattened.
  std::vector<core::QueryTimings> all() const;
};

/// Analyze one client's captured trace into per-query timings, then clear
/// the recorder (requires capture_clients=true). Shared by the serial and
/// sharded experiment runners.
std::vector<core::QueryTimings> analyze_client_trace(Scenario::Client& client,
                                                     std::size_t boundary);

/// Core measurement loop over an explicit subset of vantage points: runs
/// boundary discovery (always from client 0, so every shard of a sharded
/// campaign agrees on the boundary), schedules the query sequence for the
/// listed clients — each keeps its *global* stagger slot, so a client's
/// schedule is identical whether it runs alongside the full fleet or alone
/// in a replica — and analyzes their traces. Result vectors align with
/// `client_indices`, not with scenario.clients(). This is the unit the
/// parallel replica engine (parallel_experiment.hpp) shards and merges.
ExperimentResult run_experiment_subset(
    Scenario& scenario, const ExperimentOptions& options,
    std::span<const std::size_t> client_indices,
    const std::function<std::size_t(std::size_t)>& fe_for_client);

/// Datasets B: all clients query the FE at `fe_index`.
ExperimentResult run_fixed_fe_experiment(Scenario& scenario,
                                         std::size_t fe_index,
                                         const ExperimentOptions& options);

/// Datasets A: each client queries its default FE.
ExperimentResult run_default_fe_experiment(Scenario& scenario,
                                           const ExperimentOptions& options);

struct CachingExperimentResult {
  core::CacheDetectionResult detection;
  std::vector<double> t_dynamic_same_ms;
  std::vector<double> t_dynamic_distinct_ms;
  std::size_t fe_cache_hits = 0;  // ground truth from the FE, for tests
};

/// §3 caching experiment against the FE at `fe_index`. `reps` queries with
/// one repeated keyword, then `reps` distinct keywords, from one client.
CachingExperimentResult run_caching_experiment(Scenario& scenario,
                                               std::size_t client_index,
                                               std::size_t fe_index,
                                               std::size_t reps);

/// Fig. 9: run `reps` queries from each distance-sweep probe client and
/// factor the fetch time. Requires a Scenario built with
/// `fe_distance_sweep_miles`.
struct FetchFactoringResult {
  std::vector<double> distances_miles;
  std::vector<double> med_t_dynamic_ms;
  core::FetchFactoring factoring;
  /// Operational counters (merged across shards in the parallel runner).
  obs::MetricsRegistry metrics;
};

FetchFactoringResult run_fetch_factoring_experiment(
    Scenario& scenario, const search::Keyword& keyword, std::size_t reps);

}  // namespace dyncdn::testbed
