// Sharded "replica plan -> merge" experiment runners.
//
// The serial runners in experiment.hpp drive every vantage point through
// one Simulator. These spec-based overloads instead split the campaign
// into independent replicas — each replica rebuilds the *same* scenario
// (same seed, same topology, same named RNG streams) and drives only its
// shard of vantage points — and run the replicas on a deterministic thread
// pool (parallel/replica.hpp). Merging scatters each shard's per-node
// results back into fleet order.
//
// Determinism contract:
//   * For a fixed ReplicaPlan::shards, the merged result is bit-identical
//     at every thread count (1, 2, N...): replicas share no mutable state
//     and results are merged by index, never by completion order.
//   * With shards == 1 the single replica is exactly the legacy serial
//     path (construct, warm_up, run_*_experiment), so old and new results
//     can be diffed bit-for-bit.
//   * With shards > 1, vantage points in different shards no longer
//     contend inside one simulator; per-client submission schedules are
//     unchanged (global stagger slots), but FE/BE queueing reflects only
//     same-shard traffic. The default (one shard per vantage point) models
//     the paper's PlanetLab reality: measurement clients do not share an
//     access path, and a 60-node campaign perturbing one FE is exactly
//     what Datasets A/B measured.
#pragma once

#include "parallel/replica.hpp"
#include "testbed/experiment.hpp"
#include "testbed/scenario.hpp"

namespace dyncdn::testbed {

struct ReplicaPlan {
  /// Number of replicas the vantage-point set is split into.
  /// 0 = one shard per vantage point (maximum parallelism).
  /// 1 = legacy serial semantics (whole fleet in one simulator).
  std::size_t shards = 0;
  /// Worker-thread resolution (DYNCDN_THREADS / hardware concurrency).
  parallel::ExecutorConfig executor;
  /// Warm-up simulated before measurement in every replica.
  sim::SimTime warm_up = sim::SimTime::seconds(5);
};

/// Vantage points a ScenarioOptions will build (sweep-aware).
std::size_t planned_client_count(const ScenarioOptions& options);

/// Datasets B, sharded: all clients query the FE at `fe_index`.
ExperimentResult run_fixed_fe_experiment(const ScenarioOptions& scenario_options,
                                         std::size_t fe_index,
                                         const ExperimentOptions& options,
                                         const ReplicaPlan& plan = {});

/// Datasets A, sharded: each client queries its default (DNS-nearest) FE.
ExperimentResult run_default_fe_experiment(
    const ScenarioOptions& scenario_options, const ExperimentOptions& options,
    const ReplicaPlan& plan = {});

/// Fig. 9, sharded: one replica per group of distance-sweep probes; the
/// regression runs once over the merged (distance, median) series.
FetchFactoringResult run_fetch_factoring_experiment(
    const ScenarioOptions& scenario_options, const search::Keyword& keyword,
    std::size_t reps, const ReplicaPlan& plan = {});

}  // namespace dyncdn::testbed
