
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cache_detector.cpp" "src/core/CMakeFiles/dyncdn_core.dir/cache_detector.cpp.o" "gcc" "src/core/CMakeFiles/dyncdn_core.dir/cache_detector.cpp.o.d"
  "/root/repo/src/core/inference.cpp" "src/core/CMakeFiles/dyncdn_core.dir/inference.cpp.o" "gcc" "src/core/CMakeFiles/dyncdn_core.dir/inference.cpp.o.d"
  "/root/repo/src/core/timings.cpp" "src/core/CMakeFiles/dyncdn_core.dir/timings.cpp.o" "gcc" "src/core/CMakeFiles/dyncdn_core.dir/timings.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/dyncdn_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/dyncdn_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dyncdn_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dyncdn_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/capture/CMakeFiles/dyncdn_capture.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
