file(REMOVE_RECURSE
  "CMakeFiles/dyncdn_testbed.dir/experiment.cpp.o"
  "CMakeFiles/dyncdn_testbed.dir/experiment.cpp.o.d"
  "CMakeFiles/dyncdn_testbed.dir/planetlab.cpp.o"
  "CMakeFiles/dyncdn_testbed.dir/planetlab.cpp.o.d"
  "CMakeFiles/dyncdn_testbed.dir/scenario.cpp.o"
  "CMakeFiles/dyncdn_testbed.dir/scenario.cpp.o.d"
  "libdyncdn_testbed.a"
  "libdyncdn_testbed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dyncdn_testbed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
