// Bump-pointer arena for build-then-drop-together allocations.
//
// An Arena carves variable-size allocations out of chunked slabs with a
// pointer bump; individual allocations are never freed — reset() returns
// the whole arena to empty in O(chunks), retaining the chunk storage for
// the next cycle. Use it where a group of allocations shares one lifetime
// (a boundary probe's pending segments, a routing recompute's scratch);
// use SlabPool where objects of one size are acquired and released
// individually. Like SlabPool, an Arena is single-thread / per-shard by
// design, and reset() poisons the reclaimed space under ASan so stale
// pointers into a previous cycle fault.
#pragma once

#include <cstddef>
#include <cstring>
#include <new>
#include <vector>

#include "mem/slab.hpp"  // DYNCDN_MEM_POISON / DYNCDN_MEM_UNPOISON

namespace dyncdn::mem {

class Arena {
 public:
  explicit Arena(std::size_t chunk_bytes = 64 * 1024)
      : chunk_bytes_(chunk_bytes < 256 ? 256 : chunk_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  ~Arena() {
    for (const Chunk& c : chunks_) {
      DYNCDN_MEM_UNPOISON(c.base, c.size);
      ::operator delete(c.base);
    }
  }

  void* allocate(std::size_t bytes,
                 std::size_t align = alignof(std::max_align_t)) {
    if (bytes == 0) bytes = 1;
    std::size_t off = (used_ + align - 1) / align * align;
    if (current_ >= chunks_.size() || off + bytes > chunks_[current_].size) {
      next_chunk(bytes, align);
      off = 0;
    }
    std::byte* p = chunks_[current_].base + off;
    used_ = off + bytes;
    bytes_allocated_ += bytes;
    DYNCDN_MEM_UNPOISON(p, bytes);
    return p;
  }

  /// Copy `n` bytes into the arena.
  void* copy(const void* src, std::size_t n) {
    void* p = allocate(n == 0 ? 1 : n, 1);
    if (n > 0) std::memcpy(p, src, n);
    return p;
  }

  /// Drop every allocation, keeping chunk storage for reuse.
  void reset() {
    for (const Chunk& c : chunks_) DYNCDN_MEM_POISON(c.base, c.size);
    current_ = 0;
    used_ = 0;
    bytes_allocated_ = 0;
  }

  /// Bytes handed out since construction/reset (excludes alignment waste).
  std::size_t bytes_allocated() const { return bytes_allocated_; }
  std::size_t chunk_count() const { return chunks_.size(); }

 private:
  struct Chunk {
    std::byte* base;
    std::size_t size;
  };

  void next_chunk(std::size_t bytes, std::size_t align) {
    // Advance into retained chunks first; allocate a fresh one only when
    // they are exhausted (or too small for an oversized request).
    const std::size_t need = bytes + align;
    if (current_ + 1 < chunks_.size() && chunks_[current_ + 1].size >= need) {
      ++current_;
      used_ = 0;
      return;
    }
    const std::size_t size = need > chunk_bytes_ ? need : chunk_bytes_;
    auto* base = static_cast<std::byte*>(::operator new(size));
    DYNCDN_MEM_POISON(base, size);
    chunks_.push_back(Chunk{base, size});
    current_ = chunks_.size() - 1;
    used_ = 0;
  }

  std::size_t chunk_bytes_;
  std::vector<Chunk> chunks_;
  std::size_t current_ = 0;  // index of the chunk being bumped
  std::size_t used_ = 0;     // bytes consumed in chunks_[current_]
  std::size_t bytes_allocated_ = 0;
};

}  // namespace dyncdn::mem
