// Deterministic parallel replica execution.
//
// The paper's campaigns are embarrassingly parallel: hundreds of vantage
// points, sweep points and bench repetitions, each an independent
// simulation. The ReplicaExecutor shards such replicas across a fixed set
// of worker threads with *static round-robin assignment* — no work
// stealing, no shared mutable simulation state — so the set of replicas a
// worker runs is a pure function of (replica_count, thread_count), and the
// result vector is a pure function of the replica bodies alone. Replica i's
// result lands at index i regardless of completion order, which makes the
// merged output bit-identical at any thread count.
//
// Seeding: replica_seed(base, i) gives every replica its own independent,
// stable RNG universe. It is a SplitMix64-style hash, so neighbouring
// indices produce statistically unrelated streams.
#pragma once

#include <cstdint>
#include <exception>
#include <optional>
#include <thread>
#include <type_traits>
#include <vector>

namespace dyncdn::parallel {

/// Stable per-replica seed: hash of (base_seed, replica_index).
/// Same inputs always give the same seed, on every platform.
std::uint64_t replica_seed(std::uint64_t base_seed,
                           std::uint64_t replica_index);

struct ExecutorConfig {
  /// Worker count. 0 = use DYNCDN_THREADS if set, else
  /// std::thread::hardware_concurrency().
  std::size_t threads = 0;
};

/// Thread count an ExecutorConfig resolves to (env var / hardware probe
/// applied, floor of 1).
std::size_t resolve_threads(const ExecutorConfig& config);

class ReplicaExecutor {
 public:
  explicit ReplicaExecutor(ExecutorConfig config = {})
      : threads_(resolve_threads(config)) {}

  std::size_t threads() const { return threads_; }

  /// Run fn(0) .. fn(count-1), returning results in index order. With one
  /// thread (or one replica) everything runs inline on the caller — the
  /// serial path is literally the same code. Exceptions propagate: the
  /// lowest-index replica's exception is rethrown after all workers join.
  template <class Fn>
  auto run(std::size_t count, Fn&& fn)
      -> std::vector<std::invoke_result_t<Fn&, std::size_t>> {
    using R = std::invoke_result_t<Fn&, std::size_t>;
    static_assert(!std::is_void_v<R>,
                  "ReplicaExecutor::run requires a result per replica");

    std::vector<std::optional<R>> slots(count);
    const std::size_t workers = std::min(threads_, count);
    if (workers <= 1) {
      for (std::size_t i = 0; i < count; ++i) slots[i].emplace(fn(i));
    } else {
      std::vector<std::exception_ptr> errors(count);
      std::vector<std::thread> pool;
      pool.reserve(workers);
      for (std::size_t w = 0; w < workers; ++w) {
        pool.emplace_back([&, w]() {
          // Static round-robin shard: worker w owns replicas w, w+W, ...
          for (std::size_t i = w; i < count; i += workers) {
            try {
              slots[i].emplace(fn(i));
            } catch (...) {
              errors[i] = std::current_exception();
            }
          }
        });
      }
      for (std::thread& t : pool) t.join();
      for (const std::exception_ptr& e : errors) {
        if (e) std::rethrow_exception(e);
      }
    }

    std::vector<R> out;
    out.reserve(count);
    for (std::optional<R>& s : slots) out.push_back(std::move(*s));
    return out;
  }

 private:
  std::size_t threads_;
};

}  // namespace dyncdn::parallel
