# Empty dependencies file for baseline_split_tcp.
# This may be replaced when dependencies are built.
