// Least-squares linear regression.
//
// The paper's §5 factoring of the FE-BE fetch time fits
// T_dynamic = slope * distance + intercept, reading the intercept as the
// back-end processing time and the slope as the per-mile network delay.
// We additionally report R², standard errors and a robust (Theil–Sen)
// alternative for outlier-laden series.
#pragma once

#include <span>
#include <string>

namespace dyncdn::stats {

struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;
  double slope_stderr = 0.0;
  double intercept_stderr = 0.0;
  std::size_t n = 0;

  double predict(double x) const { return slope * x + intercept; }
  /// e.g. "y = 0.08*x + 2.5e+02 (R^2=0.91, n=120)"
  std::string to_string() const;
};

/// Ordinary least squares y = a*x + b. Requires xs.size() == ys.size().
/// With n < 2 (or zero x-variance) returns a horizontal fit through the mean.
LinearFit linear_fit(std::span<const double> xs, std::span<const double> ys);

/// Theil–Sen estimator: slope = median of pairwise slopes, intercept =
/// median of (y - slope*x). Robust to a minority of outliers; O(n²) pairs,
/// fine for the few hundred points per figure.
LinearFit theil_sen_fit(std::span<const double> xs, std::span<const double> ys);

/// Pearson correlation coefficient; 0 when either variance vanishes.
double pearson(std::span<const double> xs, std::span<const double> ys);

}  // namespace dyncdn::stats
