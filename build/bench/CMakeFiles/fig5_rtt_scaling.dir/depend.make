# Empty dependencies file for fig5_rtt_scaling.
# This may be replaced when dependencies are built.
