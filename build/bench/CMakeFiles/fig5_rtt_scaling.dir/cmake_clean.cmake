file(REMOVE_RECURSE
  "CMakeFiles/fig5_rtt_scaling.dir/fig5_rtt_scaling.cpp.o"
  "CMakeFiles/fig5_rtt_scaling.dir/fig5_rtt_scaling.cpp.o.d"
  "fig5_rtt_scaling"
  "fig5_rtt_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_rtt_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
