file(REMOVE_RECURSE
  "CMakeFiles/dyncdn_search.dir/content_model.cpp.o"
  "CMakeFiles/dyncdn_search.dir/content_model.cpp.o.d"
  "CMakeFiles/dyncdn_search.dir/keywords.cpp.o"
  "CMakeFiles/dyncdn_search.dir/keywords.cpp.o.d"
  "libdyncdn_search.a"
  "libdyncdn_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dyncdn_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
