// Figure 9 / §5 reproduction: factoring the FE-BE fetch time.
//
// FE sites are placed at controlled distances from the BE data center,
// each probed by a co-located (low-RTT) client so that T_dynamic ~ T_fetch.
// Regressing median T_dynamic against distance factors the fetch time:
// the Y-intercept estimates the distance-independent cost (dominated by
// the BE processing time) and the slope the per-mile network delay.
//
// Paper numbers: intercept ~260ms (Bing) vs ~34ms (Google); slopes similar
// across the services (0.08 vs 0.099 ms/mile). We match the *shape*:
// intercept ordering and slope similarity. Our slope constant C is set by
// the internal TCP receive window (see DESIGN.md).
//
// Quick: 10 distances x 12 reps. DYNCDN_FULL=1: 20 x 30.
#include <cstdio>

#include "bench_util.hpp"
#include "core/inference.hpp"
#include "search/keywords.hpp"
#include "stats/bootstrap.hpp"
#include "testbed/parallel_experiment.hpp"
#include "testbed/scenario.hpp"

using namespace dyncdn;

namespace {

testbed::FetchFactoringResult run_service(cdn::ServiceProfile profile,
                                          std::size_t points,
                                          std::size_t reps) {
  testbed::ScenarioOptions opt;
  opt.profile = profile;
  opt.seed = 99;
  std::vector<double> distances;
  for (std::size_t i = 0; i < points; ++i) {
    distances.push_back(25.0 + 475.0 * static_cast<double>(i) /
                                   static_cast<double>(points - 1));
  }
  opt.fe_distance_sweep_miles = distances;

  // An ordinary (not BE-cache-hot) keyword: hot keywords shrink T_proc and
  // could push short-distance points into the delivery-gated regime.
  const search::Keyword keyword{"network measurement study",
                                search::KeywordClass::kGranular, 5000};
  // Sharded one-replica-per-sweep-point; thread-count-invariant results.
  return testbed::run_fetch_factoring_experiment(opt, keyword, reps,
                                                 testbed::ReplicaPlan{});
}

void report(const std::string& name,
            const testbed::FetchFactoringResult& r) {
  bench::section(name + " — T_dynamic vs FE->BE distance");
  std::printf("%14s %16s %16s\n", "distance(mi)", "med Tdynamic(ms)",
              "fit prediction");
  for (std::size_t i = 0; i < r.distances_miles.size(); ++i) {
    std::printf("%14.0f %16.1f %16.1f\n", r.distances_miles[i],
                r.med_t_dynamic_ms[i],
                r.factoring.fit.predict(r.distances_miles[i]));
  }
  bench::ascii_scatter(r.distances_miles, r.med_t_dynamic_ms, 64, 14);
  std::printf("  %s\n", r.factoring.to_string().c_str());

  // The paper reports the intercept as a point estimate; attach the
  // uncertainty it deserves.
  sim::RngStream rng(4242);
  const auto intercept_ci = stats::bootstrap_intercept_ci(
      r.distances_miles, r.med_t_dynamic_ms, rng);
  const auto slope_ci =
      stats::bootstrap_slope_ci(r.distances_miles, r.med_t_dynamic_ms, rng);
  std::printf("  intercept %s ms; slope %s ms/mile\n",
              intercept_ci.to_string().c_str(), slope_ci.to_string().c_str());

  const std::vector<std::string> cols{"distance_miles", "med_t_dynamic_ms"};
  const std::vector<std::vector<double>> data{r.distances_miles,
                                              r.med_t_dynamic_ms};
  bench::write_csv("fig9_" + name.substr(0, name.find(' ')) + ".csv", cols,
                   data);
}

}  // namespace

int main() {
  const std::size_t points = bench::full_scale() ? 20 : 12;
  const std::size_t reps = bench::full_scale() ? 80 : 24;
  bench::banner("Figure 9 — factoring the FE-BE fetch time",
                std::to_string(points) + " FE distances x " +
                    std::to_string(reps) + " queries from co-located probes");

  const auto bing = run_service(cdn::bing_like_profile(), points, reps);
  const auto google = run_service(cdn::google_like_profile(), points, reps);

  report("Bing-like (BE: Virginia)", bing);
  report("Google-like (BE: Lenoir, NC)", google);

  bench::section("paper-shape summary");
  std::printf("intercepts (est. T_proc + FE service): Bing-like %.0fms, "
              "Google-like %.0fms  (paper: 260 vs 34)\n",
              bing.factoring.t_proc_ms(), google.factoring.t_proc_ms());
  std::printf("slopes: Bing-like %.4f, Google-like %.4f ms/mile "
              "(paper: 0.08 vs 0.099)\n",
              bing.factoring.slope_ms_per_mile(),
              google.factoring.slope_ms_per_mile());
  const bool intercept_order =
      bing.factoring.t_proc_ms() > 3.0 * google.factoring.t_proc_ms();
  const double slope_ratio = bing.factoring.slope_ms_per_mile() /
                             google.factoring.slope_ms_per_mile();
  const bool slopes_similar = slope_ratio > 0.5 && slope_ratio < 2.0;
  std::printf("Bing intercept >> Google intercept: %s\n",
              intercept_order ? "yes" : "no");
  std::printf("slopes comparable across services:  %s (ratio %.2f)\n",
              slopes_similar ? "yes" : "no", slope_ratio);
  std::printf("implied C (round trips): Bing-like %.1f, Google-like %.1f\n",
              bing.factoring.implied_round_trips(),
              google.factoring.implied_round_trips());
  std::printf("paper shape %s\n",
              intercept_order && slopes_similar ? "HOLDS" : "VIOLATED");
  return 0;
}
