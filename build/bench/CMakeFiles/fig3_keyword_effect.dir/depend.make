# Empty dependencies file for fig3_keyword_effect.
# This may be replaced when dependencies are built.
