// Prometheus text exposition format (version 0.0.4) for MetricsRegistry.
//
// Counters export as `<name> <value>`, gauges likewise, histograms as the
// canonical `<name>_bucket{le="..."}` / `_sum` / `_count` triple. Output
// is fully deterministic: names iterate in sorted order and numbers are
// printed with a fixed format, so two registries with identical contents
// produce byte-identical dumps (the thread-count determinism test relies
// on this).
#pragma once

#include <string>
#include <string_view>

namespace dyncdn::obs {

class MetricsRegistry;

std::string export_prometheus(const MetricsRegistry& registry,
                              const std::string& prefix = "dyncdn_");

bool write_prometheus(const MetricsRegistry& registry,
                      const std::string& path,
                      const std::string& prefix = "dyncdn_");

// One-line description for a catalog metric (unprefixed name, e.g.
// "fe_queries_handled"); empty for unknown names. Emitted as `# HELP`
// ahead of `# TYPE` by export_prometheus.
std::string_view metric_help(std::string_view name);

// Exposition-format escaping. HELP text escapes backslash and newline;
// label values additionally escape double quotes.
std::string escape_help(std::string_view text);
std::string escape_label_value(std::string_view text);

}  // namespace dyncdn::obs
