#include "stats/bootstrap.hpp"

#include <algorithm>
#include <cstdio>
#include <vector>

#include "stats/descriptive.hpp"
#include "stats/regression.hpp"

namespace dyncdn::stats {

std::string BootstrapInterval::to_string() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "%.2f [%.2f, %.2f] (%.0f%% CI, %zu resamples)",
                point, lo, hi, level * 100.0, resamples);
  return buf;
}

namespace {
BootstrapInterval percentile_interval(double point,
                                      std::vector<double> stats_out,
                                      double level,
                                      std::size_t resamples) {
  BootstrapInterval ci;
  ci.point = point;
  ci.level = level;
  ci.resamples = resamples;
  if (stats_out.empty()) {
    ci.lo = ci.hi = point;
    return ci;
  }
  std::sort(stats_out.begin(), stats_out.end());
  const double alpha = (1.0 - level) / 2.0;
  ci.lo = quantile(stats_out, alpha);
  ci.hi = quantile(stats_out, 1.0 - alpha);
  return ci;
}
}  // namespace

BootstrapInterval bootstrap_interval(std::span<const double> sample,
                                     const Statistic& statistic,
                                     std::size_t resamples, double level,
                                     sim::RngStream& rng) {
  const double point = statistic(sample);
  std::vector<double> stats_out;
  if (sample.size() >= 2) {
    stats_out.reserve(resamples);
    std::vector<double> draw(sample.size());
    for (std::size_t r = 0; r < resamples; ++r) {
      for (std::size_t i = 0; i < sample.size(); ++i) {
        draw[i] = sample[static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(sample.size()) - 1))];
      }
      stats_out.push_back(statistic(draw));
    }
  }
  return percentile_interval(point, std::move(stats_out), level, resamples);
}

BootstrapInterval bootstrap_paired_interval(std::span<const double> xs,
                                            std::span<const double> ys,
                                            const PairedStatistic& statistic,
                                            std::size_t resamples,
                                            double level,
                                            sim::RngStream& rng) {
  const double point = statistic(xs, ys);
  std::vector<double> stats_out;
  if (xs.size() >= 2 && xs.size() == ys.size()) {
    stats_out.reserve(resamples);
    std::vector<double> rx(xs.size()), ry(ys.size());
    for (std::size_t r = 0; r < resamples; ++r) {
      for (std::size_t i = 0; i < xs.size(); ++i) {
        const auto k = static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(xs.size()) - 1));
        rx[i] = xs[k];
        ry[i] = ys[k];
      }
      stats_out.push_back(statistic(rx, ry));
    }
  }
  return percentile_interval(point, std::move(stats_out), level, resamples);
}

BootstrapInterval bootstrap_intercept_ci(std::span<const double> xs,
                                         std::span<const double> ys,
                                         sim::RngStream& rng,
                                         std::size_t resamples) {
  return bootstrap_paired_interval(
      xs, ys,
      [](std::span<const double> x, std::span<const double> y) {
        return linear_fit(x, y).intercept;
      },
      resamples, 0.95, rng);
}

BootstrapInterval bootstrap_slope_ci(std::span<const double> xs,
                                     std::span<const double> ys,
                                     sim::RngStream& rng,
                                     std::size_t resamples) {
  return bootstrap_paired_interval(
      xs, ys,
      [](std::span<const double> x, std::span<const double> y) {
        return linear_fit(x, y).slope;
      },
      resamples, 0.95, rng);
}

}  // namespace dyncdn::stats
