file(REMOVE_RECURSE
  "CMakeFiles/dyncdn_core.dir/cache_detector.cpp.o"
  "CMakeFiles/dyncdn_core.dir/cache_detector.cpp.o.d"
  "CMakeFiles/dyncdn_core.dir/inference.cpp.o"
  "CMakeFiles/dyncdn_core.dir/inference.cpp.o.d"
  "CMakeFiles/dyncdn_core.dir/timings.cpp.o"
  "CMakeFiles/dyncdn_core.dir/timings.cpp.o.d"
  "libdyncdn_core.a"
  "libdyncdn_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dyncdn_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
