file(REMOVE_RECURSE
  "CMakeFiles/fig6_rtt_cdf.dir/fig6_rtt_cdf.cpp.o"
  "CMakeFiles/fig6_rtt_cdf.dir/fig6_rtt_cdf.cpp.o.d"
  "fig6_rtt_cdf"
  "fig6_rtt_cdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_rtt_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
