// Deterministic random-number infrastructure.
//
// Every stochastic component of the simulation (link loss, server load,
// processing times, workload choice) draws from its own named stream derived
// from a single experiment seed. Components therefore stay reproducible and
// statistically independent even when the set of components changes: adding
// a tap to one link does not perturb the draws seen by another.
#pragma once

#include <cstdint>
#include <random>
#include <string>
#include <string_view>

#include "sim/time.hpp"

namespace dyncdn::sim {

/// One independent random stream. Thin wrapper over std::mt19937_64 with the
/// distribution draws the simulator needs, expressed in domain units.
class RngStream {
 public:
  explicit RngStream(std::uint64_t seed) : engine_(seed) {}

  /// Uniform real in [0, 1).
  double uniform01() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Uniform real in [lo, hi).
  double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Bernoulli trial with success probability p.
  bool chance(double p) { return uniform01() < p; }

  /// Normal draw (mean, stddev).
  double normal(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Lognormal draw parameterized by the *resulting* median and a
  /// multiplicative sigma (sigma of the underlying normal). Used for server
  /// processing-time variability, which is right-skewed in practice.
  double lognormal_median(double median, double sigma) {
    return std::lognormal_distribution<double>(std::log(median), sigma)(engine_);
  }

  /// Exponential draw with the given mean.
  double exponential(double mean) {
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

  /// Pareto draw with scale xm and shape alpha (heavy-tailed sizes).
  double pareto(double xm, double alpha) {
    const double u = 1.0 - uniform01();
    return xm / std::pow(u, 1.0 / alpha);
  }

  /// Draw a SimTime from a normal in milliseconds, clamped at min_ms.
  SimTime normal_ms(double mean_ms, double stddev_ms, double min_ms = 0.0) {
    double v = normal(mean_ms, stddev_ms);
    if (v < min_ms) v = min_ms;
    return SimTime::from_milliseconds(v);
  }

  /// Draw a SimTime from a lognormal in milliseconds.
  SimTime lognormal_ms(double median_ms, double sigma) {
    return SimTime::from_milliseconds(lognormal_median(median_ms, sigma));
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

/// Derives independent named streams from one experiment seed via
/// SplitMix64-based hashing of the stream name. Same (seed, name) always
/// yields the same stream.
class RngFactory {
 public:
  explicit RngFactory(std::uint64_t experiment_seed)
      : experiment_seed_(experiment_seed) {}

  /// Create the stream for `name` (e.g. "link/client3-fe1/loss").
  RngStream stream(std::string_view name) const;

  /// Derive a sub-factory, e.g. one per experiment repetition.
  RngFactory derive(std::string_view name) const;

  std::uint64_t seed() const { return experiment_seed_; }

 private:
  static std::uint64_t mix(std::uint64_t x);

  std::uint64_t experiment_seed_;
};

}  // namespace dyncdn::sim
