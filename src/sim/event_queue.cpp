#include "sim/event_queue.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <utility>

namespace dyncdn::sim {

EventId EventQueue::schedule(SimTime at, Callback cb) {
  if (at < last_popped_) {
    throw std::logic_error("EventQueue::schedule: scheduling into the past (" +
                           at.to_string() + " < " + last_popped_.to_string() +
                           ")");
  }
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  slots_[slot].cb = std::move(cb);

  const std::uint32_t gen = slots_[slot].gen;
  heap_.push_back(HeapEntry{at, next_seq_++, slot, gen});
  std::push_heap(heap_.begin(), heap_.end(), later);
  if (heap_.size() > max_heaped_) max_heaped_ = heap_.size();
  ++live_;
  return EventId{(static_cast<std::uint64_t>(slot) << 32) | gen};
}

void EventQueue::retire_slot(std::uint32_t slot) {
  Slot& s = slots_[slot];
  s.cb.reset();
  ++s.gen;
  free_slots_.push_back(slot);
  --live_;
}

bool EventQueue::cancel(EventId id) {
  if (!id.valid()) return false;
  const std::uint32_t slot = static_cast<std::uint32_t>(id.value() >> 32);
  const std::uint32_t gen = static_cast<std::uint32_t>(id.value());
  if (slot >= slots_.size() || slots_[slot].gen != gen) {
    return false;  // already fired/cancelled (or never scheduled here)
  }
  retire_slot(slot);
  ++cancelled_;
  ++dead_in_heap_;  // the heap entry stays until skimmed or compacted
  maybe_compact();
  return true;
}

void EventQueue::skim() {
  while (!heap_.empty() && entry_dead(heap_.front())) {
    std::pop_heap(heap_.begin(), heap_.end(), later);
    heap_.pop_back();
    --dead_in_heap_;
  }
}

void EventQueue::maybe_compact() {
  // Rebuild once dead entries dominate: keeps the heap within 2x the live
  // event count (plus slack) no matter how hard timers churn.
  if (dead_in_heap_ < 64 || dead_in_heap_ <= heap_.size() - dead_in_heap_) {
    return;
  }
  heap_.erase(std::remove_if(heap_.begin(), heap_.end(),
                             [this](const HeapEntry& e) {
                               return entry_dead(e);
                             }),
              heap_.end());
  std::make_heap(heap_.begin(), heap_.end(), later);
  dead_in_heap_ = 0;
}

bool EventQueue::empty() const {
  const_cast<EventQueue*>(this)->skim();
  return heap_.empty();
}

SimTime EventQueue::next_time() const {
  const_cast<EventQueue*>(this)->skim();
  return heap_.empty() ? SimTime::infinity() : heap_.front().at;
}

SimTime EventQueue::pop_and_run() {
  skim();
  assert(!heap_.empty() && "pop_and_run on empty queue");
  const HeapEntry entry = heap_.front();
  std::pop_heap(heap_.begin(), heap_.end(), later);
  heap_.pop_back();
  // Move the callback out and retire the slot *before* running: the
  // callback may itself schedule (possibly reusing this slot) or try to
  // cancel its own id, which must report "already fired".
  Callback cb = std::move(slots_[entry.slot].cb);
  retire_slot(entry.slot);
  last_popped_ = entry.at;
  cb();
  return entry.at;
}

std::size_t EventQueue::pending_count() const { return live_; }

}  // namespace dyncdn::sim
