// Observability layer: span tracing, metrics registry, exporters, ring
// buffer — and the headline cross-check: a traced query's span events
// reproduce the paper's t1..te timeline with ZERO sim-clock error against
// the packet-capture analysis pipeline.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/boundary.hpp"
#include "analysis/reassembly.hpp"
#include "analysis/timeline.hpp"
#include "obs/export_chrome.hpp"
#include "obs/export_prometheus.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/ring.hpp"
#include "obs/trace.hpp"
#include "search/keywords.hpp"
#include "testbed/scenario.hpp"

using namespace dyncdn;
using sim::SimTime;

// ---------------------------------------------------------------------------
// Metrics registry
// ---------------------------------------------------------------------------

TEST(Metrics, CountersGaugesHistograms) {
  obs::MetricsRegistry r;
  EXPECT_TRUE(r.empty());
  r.add("events_total", 3);
  r.add("events_total", 4);
  EXPECT_EQ(r.counter("events_total"), 7u);
  EXPECT_EQ(r.counter("absent"), 0u);

  r.gauge_max("heap_peak", 10);
  r.gauge_max("heap_peak", 4);  // high-water mark keeps the max
  EXPECT_EQ(r.gauge("heap_peak"), 10);

  r.observe("latency_ms", 5.0);
  r.observe("latency_ms", 50.0);
  ASSERT_NE(r.histogram("latency_ms"), nullptr);
  EXPECT_EQ(r.histogram("latency_ms")->count(), 2u);
  EXPECT_DOUBLE_EQ(r.histogram("latency_ms")->sum(), 55.0);
  EXPECT_DOUBLE_EQ(r.histogram("latency_ms")->min(), 5.0);
  EXPECT_DOUBLE_EQ(r.histogram("latency_ms")->max(), 50.0);
  EXPECT_FALSE(r.empty());
}

TEST(Metrics, MergeIsOrderIndependent) {
  const auto build = [](std::uint64_t c, std::int64_t g, double h) {
    obs::MetricsRegistry r;
    r.add("queries_total", c);
    r.gauge_max("depth_peak", g);
    r.observe("rtt_ms", h);
    return r;
  };
  const obs::MetricsRegistry a = build(3, 7, 12.0);
  const obs::MetricsRegistry b = build(5, 2, 180.0);

  obs::MetricsRegistry ab, ba;
  ab.merge(a);
  ab.merge(b);
  ba.merge(b);
  ba.merge(a);

  EXPECT_EQ(ab.counter("queries_total"), 8u);
  EXPECT_EQ(ab.gauge("depth_peak"), 7);
  EXPECT_EQ(ab.histogram("rtt_ms")->count(), 2u);
  // Byte-identical exports regardless of merge order.
  EXPECT_EQ(obs::export_prometheus(ab), obs::export_prometheus(ba));
}

TEST(Metrics, PrometheusTextFormat) {
  obs::MetricsRegistry r;
  r.add("queries_total", 42);
  r.gauge_max("queue_peak", 9);
  r.observe("rtt_ms", 80.0);
  const std::string text = obs::export_prometheus(r);

  EXPECT_NE(text.find("# TYPE dyncdn_queries_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("dyncdn_queries_total 42\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE dyncdn_queue_peak gauge\n"), std::string::npos);
  EXPECT_NE(text.find("dyncdn_queue_peak 9\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE dyncdn_rtt_ms histogram\n"), std::string::npos);
  EXPECT_NE(text.find("dyncdn_rtt_ms_bucket{le=\"+Inf\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("dyncdn_rtt_ms_count 1\n"), std::string::npos);

  // Canonical: identical registries export identical bytes.
  obs::MetricsRegistry r2;
  r2.add("queries_total", 42);
  r2.gauge_max("queue_peak", 9);
  r2.observe("rtt_ms", 80.0);
  EXPECT_EQ(text, obs::export_prometheus(r2));
}

// ---------------------------------------------------------------------------
// Span tracing
// ---------------------------------------------------------------------------

TEST(Trace, SpanNestingAndEvents) {
  obs::TraceSession t;
  const obs::SpanId root =
      t.begin_span(SimTime::milliseconds(10), "query", "client");
  const obs::SpanId child =
      t.begin_span(SimTime::milliseconds(11), "tcp.flow", "client", root);
  ASSERT_NE(root, obs::kNoSpan);
  ASSERT_NE(child, obs::kNoSpan);
  EXPECT_EQ(t.open_span_count(), 2u);

  t.add_arg(root, "keyword", obs::ArgValue::of(std::string("test")));
  t.add_event(child, "synack", SimTime::milliseconds(12));
  t.end_span(child, SimTime::milliseconds(20));
  t.end_span(root, SimTime::milliseconds(21));
  EXPECT_EQ(t.open_span_count(), 0u);

  const obs::SpanRecord* c = t.find(child);
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->parent, root);
  EXPECT_EQ(c->start, SimTime::milliseconds(11));
  EXPECT_EQ(c->end, SimTime::milliseconds(20));
  ASSERT_EQ(c->events.size(), 1u);
  EXPECT_EQ(c->events[0].name, "synack");
}

TEST(Trace, DisabledSessionIsNoOp) {
  obs::TraceSession t;
  t.set_enabled(false);
  const obs::SpanId id = t.begin_span(SimTime::zero(), "query", "client");
  EXPECT_EQ(id, obs::kNoSpan);
  t.add_arg(id, "k", obs::ArgValue::of(std::int64_t{1}));
  t.add_event(id, "e", SimTime::zero());
  t.end_span(id, SimTime::zero());
  EXPECT_TRUE(t.spans().empty());
}

TEST(Trace, ActiveTraceGate) {
  sim::Simulator simulator(1);
  EXPECT_EQ(obs::active_trace(simulator), nullptr);
  obs::TraceSession t;
  simulator.set_trace(&t);
  EXPECT_EQ(obs::active_trace(simulator), &t);
  t.set_enabled(false);
  EXPECT_EQ(obs::active_trace(simulator), nullptr);
}

TEST(Trace, MergeRemapsIdsAndParents) {
  obs::TraceSession main;
  const obs::SpanId existing =
      main.begin_span(SimTime::zero(), "query", "client");
  main.end_span(existing, SimTime::milliseconds(1));

  obs::TraceSession shard;
  const obs::SpanId p = shard.begin_span(SimTime::zero(), "query", "client");
  const obs::SpanId c =
      shard.begin_span(SimTime::milliseconds(1), "tcp.flow", "client", p);
  shard.end_span(c, SimTime::milliseconds(2));
  shard.end_span(p, SimTime::milliseconds(3));

  main.merge_from(std::move(shard), /*replica_id=*/4);
  ASSERT_EQ(main.spans().size(), 3u);
  const obs::SpanRecord& mp = main.spans()[1];
  const obs::SpanRecord& mc = main.spans()[2];
  EXPECT_NE(mp.id, p);  // remapped past the existing span's id
  EXPECT_EQ(mc.parent, mp.id);
  EXPECT_EQ(mp.replica, 4u);
  EXPECT_EQ(mc.replica, 4u);
  EXPECT_EQ(main.spans()[0].replica, 0u);
}

// ---------------------------------------------------------------------------
// Exporters
// ---------------------------------------------------------------------------

TEST(ChromeExport, RoundTripsThroughJsonParser) {
  obs::TraceSession t;
  const obs::SpanId root =
      t.begin_span(SimTime::nanoseconds(1'500'000), "query", "client");
  t.add_arg(root, "keyword", obs::ArgValue::of(std::string("a \"b\"")));
  t.add_arg(root, "rank", obs::ArgValue::of(std::int64_t{12}));
  t.add_event(root, "synack", SimTime::nanoseconds(2'000'001),
              {{"off", obs::ArgValue::of(std::int64_t{3})}});
  t.end_span(root, SimTime::nanoseconds(4'000'123));

  const std::string text = obs::export_chrome_trace(t);
  const auto doc = obs::json::parse(text);
  ASSERT_TRUE(doc.has_value());
  const obs::json::Value* events = doc->get("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->array.size(), 2u);  // one X + one i

  const obs::json::Value& x = events->array[0];
  EXPECT_EQ(x.get("ph")->as_string(), "X");
  EXPECT_EQ(x.get("name")->as_string(), "query");
  // Exact nanoseconds survive via args; ts/dur are micros for the viewer.
  EXPECT_EQ(x.get("args")->get("start_ns")->as_int(), 1'500'000);
  EXPECT_EQ(x.get("args")->get("end_ns")->as_int(), 4'000'123);
  EXPECT_EQ(x.get("args")->get("rank")->as_int(), 12);
  EXPECT_EQ(x.get("args")->get("keyword")->as_string(), "a \"b\"");

  const obs::json::Value& i = events->array[1];
  EXPECT_EQ(i.get("ph")->as_string(), "i");
  EXPECT_EQ(i.get("args")->get("at_ns")->as_int(), 2'000'001);
  EXPECT_EQ(i.get("args")->get("off")->as_int(), 3);
}

// ---------------------------------------------------------------------------
// Binary ring buffer
// ---------------------------------------------------------------------------

TEST(Ring, EvictsOldestAndRoundTrips) {
  obs::TraceSession t(/*ring_capacity_bytes=*/256);
  ASSERT_NE(t.ring(), nullptr);
  for (int i = 0; i < 32; ++i) {
    const obs::SpanId s = t.begin_span(SimTime::milliseconds(i),
                                       "span-" + std::to_string(i), "cat");
    t.end_span(s, SimTime::milliseconds(i + 1));
  }
  EXPECT_EQ(t.ring()->appended(), 32u);
  EXPECT_GT(t.ring()->evicted(), 0u);  // budget forced eviction
  EXPECT_LE(t.ring()->used_bytes(), 256u);

  const std::string bytes = t.ring()->dump();
  const auto loaded = obs::RingBuffer::load(bytes);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->size(), t.ring()->record_count());
  // The survivors are the most recent spans, in order.
  EXPECT_EQ(loaded->back().name, "span-31");
  EXPECT_EQ(loaded->back().start, SimTime::milliseconds(31));
  EXPECT_EQ(loaded->back().end, SimTime::milliseconds(32));
}

TEST(Ring, RejectsCorruptDump) {
  EXPECT_FALSE(obs::RingBuffer::load("not a ring dump").has_value());
}

// ---------------------------------------------------------------------------
// End to end: spans vs. packet-capture analysis, tolerance 0
// ---------------------------------------------------------------------------

namespace {

/// Rebuild a QueryTimeline from one tcp.flow span, the way
/// `trace_inspect spans --diff` does: control events from the span
/// markers, data events via the shared analysis helpers.
analysis::QueryTimeline timeline_from_flow_span(const obs::SpanRecord& span,
                                                std::size_t boundary) {
  analysis::QueryTimeline tl;
  bool syn = false, synack = false, t1 = false, t2 = false;
  std::vector<analysis::ReassembledStream::Segment> segments;
  for (const obs::SpanEvent& e : span.events) {
    if (e.name == "syn" && !syn) {
      tl.tb = e.at;
      syn = true;
    } else if (e.name == "synack" && !synack) {
      tl.t_synack = e.at;
      synack = true;
    } else if (e.name == "tx_data" && !t1) {
      tl.t1 = e.at;
      t1 = true;
    } else if (e.name == "ack_data" && !t2) {
      tl.t2 = e.at;
      t2 = true;
    } else if (e.name == "rx") {
      std::size_t off = 0, len = 0;
      for (const obs::Arg& a : e.args) {
        if (a.key == "off") off = static_cast<std::size_t>(a.value.i);
        if (a.key == "len") len = static_cast<std::size_t>(a.value.i);
      }
      segments.push_back(
          analysis::ReassembledStream::Segment{off, len, e.at});
    }
  }
  if (!(syn && synack && t1 && t2)) {
    tl.invalid_reason = "incomplete control events";
    return tl;
  }
  const auto stream =
      analysis::ReassembledStream::from_segments(std::move(segments));
  analysis::finish_timeline_from_stream(tl, stream, boundary);
  return tl;
}

std::uint64_t int_arg(const std::vector<obs::Arg>& args,
                      const std::string& key) {
  for (const obs::Arg& a : args) {
    if (a.key == key) return static_cast<std::uint64_t>(a.value.i);
  }
  return 0;
}

}  // namespace

TEST(ObsEndToEnd, SpanTimelineMatchesPacketAnalysisExactly) {
#if !DYNCDN_OBS
  GTEST_SKIP() << "requires span instrumentation (DYNCDN_OBS=ON)";
#endif
  testbed::ScenarioOptions so;
  so.profile = cdn::google_like_profile();
  so.client_count = 2;
  so.seed = 7;
  so.capture_payloads = true;
  so.enable_tracing = true;
  testbed::Scenario scenario(so);
  scenario.warm_up();
  scenario.connect_client_to_fe(0, 0);

  auto& client = scenario.clients()[0];
  ASSERT_NE(client.recorder, nullptr);
  const net::Endpoint fe = scenario.fe_endpoint(0);
  const search::KeywordCatalog catalog(9);
  const auto keywords = catalog.distinct_corpus(4);
  sim::SimTime at = SimTime::zero();
  for (const search::Keyword& kw : keywords) {
    client.node->simulator().schedule_in(at, [&client, fe, kw]() {
      client.query_client->submit(fe, kw, [](const cdn::QueryResult&) {});
    });
    at = at + SimTime::milliseconds(1500);
  }
  scenario.run();

  // Boundary discovery from the capture, exactly like the offline path.
  const capture::PacketTrace web =
      client.recorder->trace().filter_remote_port(80);
  std::vector<std::string> responses;
  for (const auto& flow : web.flows()) {
    auto stream = analysis::reassemble(web, flow);
    if (!stream.bytes().empty()) responses.push_back(stream.bytes());
  }
  ASSERT_GE(responses.size(), 2u);
  const std::size_t boundary = analysis::common_prefix_boundary(responses);
  ASSERT_GT(boundary, 0u);
  const auto packet_tls = analysis::extract_all_timelines(web, 80, boundary);

  obs::TraceSession* trace = scenario.trace();
  ASSERT_NE(trace, nullptr);

  std::size_t compared = 0;
  for (const obs::SpanRecord& span : trace->spans()) {
    if (span.name != "tcp.flow") continue;
    const std::uint64_t port = int_arg(span.args, "local_port");
    const analysis::QueryTimeline from_span =
        timeline_from_flow_span(span, boundary);

    const analysis::QueryTimeline* from_packets = nullptr;
    for (const auto& tl : packet_tls) {
      if (tl.flow.local.port == port) from_packets = &tl;
    }
    ASSERT_NE(from_packets, nullptr) << "no capture flow for port " << port;

    // Tolerance 0: both observation paths agree on every timestamp.
    ASSERT_TRUE(from_packets->valid) << from_packets->invalid_reason;
    ASSERT_TRUE(from_span.valid) << from_span.invalid_reason;
    EXPECT_EQ(from_span.tb.ns(), from_packets->tb.ns());
    EXPECT_EQ(from_span.t_synack.ns(), from_packets->t_synack.ns());
    EXPECT_EQ(from_span.t1.ns(), from_packets->t1.ns());
    EXPECT_EQ(from_span.t2.ns(), from_packets->t2.ns());
    EXPECT_EQ(from_span.t3.ns(), from_packets->t3.ns());
    EXPECT_EQ(from_span.t4.ns(), from_packets->t4.ns());
    EXPECT_EQ(from_span.t5.ns(), from_packets->t5.ns());
    EXPECT_EQ(from_span.te.ns(), from_packets->te.ns());
    EXPECT_EQ(from_span.boundary, from_packets->boundary);
    EXPECT_EQ(from_span.response_bytes, from_packets->response_bytes);
    ++compared;
  }
  EXPECT_EQ(compared, keywords.size());
}

TEST(ObsEndToEnd, SpanTreeLinksClientFeAndBe) {
#if !DYNCDN_OBS
  GTEST_SKIP() << "requires span instrumentation (DYNCDN_OBS=ON)";
#endif
  testbed::ScenarioOptions so;
  so.profile = cdn::google_like_profile();
  so.client_count = 2;
  so.seed = 11;
  so.enable_tracing = true;
  testbed::Scenario scenario(so);
  scenario.warm_up();
  scenario.connect_client_to_fe(0, 0);

  auto& client = scenario.clients()[0];
  const search::Keyword kw{"observability probe",
                           search::KeywordClass::kPopular, 100};
  client.query_client->submit(scenario.fe_endpoint(0), kw,
                              [](const cdn::QueryResult&) {});
  scenario.run();

  obs::TraceSession* trace = scenario.trace();
  ASSERT_NE(trace, nullptr);
  EXPECT_EQ(trace->open_span_count(), 0u);

  const obs::SpanRecord* query = nullptr;
  for (const obs::SpanRecord& s : trace->spans()) {
    if (s.name == "query") query = &s;
  }
  ASSERT_NE(query, nullptr);

  // The cross-node chain the X-Trace-Span header stitches together:
  // query -> fe.request -> fe.fetch -> be.process, plus the local
  // query -> tcp.flow child.
  const auto find_child = [&](const std::string& name,
                              obs::SpanId parent) -> const obs::SpanRecord* {
    for (const obs::SpanRecord& s : trace->spans()) {
      if (s.name == name && s.parent == parent) return &s;
    }
    return nullptr;
  };
  EXPECT_NE(find_child("tcp.flow", query->id), nullptr);
  const obs::SpanRecord* fe_req = find_child("fe.request", query->id);
  ASSERT_NE(fe_req, nullptr);
  EXPECT_EQ(fe_req->category, "fe");
  EXPECT_NE(find_child("fe.service", fe_req->id), nullptr);
  const obs::SpanRecord* fetch = find_child("fe.fetch", fe_req->id);
  ASSERT_NE(fetch, nullptr);
  const obs::SpanRecord* be = find_child("be.process", fetch->id);
  ASSERT_NE(be, nullptr);
  EXPECT_EQ(be->category, "be");
  EXPECT_GE(be->start.ns(), fetch->start.ns());
  EXPECT_LE(be->end.ns(), fetch->end.ns());

  // static_flush marker (role 1 of the FE) sits on the request span.
  bool static_flush = false;
  for (const obs::SpanEvent& e : fe_req->events) {
    if (e.name == "static_flush") static_flush = true;
  }
  EXPECT_TRUE(static_flush);
}
