file(REMOVE_RECURSE
  "CMakeFiles/dyncdn_cdn.dir/backend.cpp.o"
  "CMakeFiles/dyncdn_cdn.dir/backend.cpp.o.d"
  "CMakeFiles/dyncdn_cdn.dir/client.cpp.o"
  "CMakeFiles/dyncdn_cdn.dir/client.cpp.o.d"
  "CMakeFiles/dyncdn_cdn.dir/deployment.cpp.o"
  "CMakeFiles/dyncdn_cdn.dir/deployment.cpp.o.d"
  "CMakeFiles/dyncdn_cdn.dir/frontend.cpp.o"
  "CMakeFiles/dyncdn_cdn.dir/frontend.cpp.o.d"
  "CMakeFiles/dyncdn_cdn.dir/interactive.cpp.o"
  "CMakeFiles/dyncdn_cdn.dir/interactive.cpp.o.d"
  "libdyncdn_cdn.a"
  "libdyncdn_cdn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dyncdn_cdn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
