# Empty compiler generated dependencies file for dyncdn_testbed.
# This may be replaced when dependencies are built.
