// Conservative parallel DES (sharded single-scenario execution): the
// tentpole contract is tolerance-0 equivalence — timelines, TSV rows and
// metrics exports byte-identical at 1, 2 and 4 shards, including lossy and
// reordering links — plus deterministic handling of the edge cases that
// break naive parallel simulators: same-timestamp arrivals from different
// shards, retransmissions straddling window barriers, and zero-lookahead
// topologies that must fall back to serial order.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "cdn/deployment.hpp"
#include "net/link.hpp"
#include "net/network.hpp"
#include "net/packet.hpp"
#include "obs/export_prometheus.hpp"
#include "parallel/pdes.hpp"
#include "search/keywords.hpp"
#include "sim/simulator.hpp"
#include "testbed/experiment.hpp"
#include "testbed/parallel_experiment.hpp"
#include "testbed/scenario.hpp"

namespace dyncdn {
namespace {

using sim::SimTime;
using namespace dyncdn::sim::literals;

// ---------------------------------------------------------------------------
// Unit level: raw Network + ShardRunner topologies.
// ---------------------------------------------------------------------------

/// One delivery observation: (arrival ns, packet id, payload bytes).
/// Logs are kept per node — a node belongs to exactly one shard, so its
/// log is written by one worker only and its order is deterministic.
using DeliveryLog = std::vector<std::tuple<long long, std::uint64_t, std::size_t>>;

struct ShardNet {
  std::vector<std::unique_ptr<sim::Simulator>> owned;
  std::vector<sim::Simulator*> sims;
  std::unique_ptr<net::Network> network;
  std::map<std::string, DeliveryLog> logs;

  explicit ShardNet(std::size_t shards, std::uint64_t seed = 9) {
    for (std::size_t s = 0; s < shards; ++s) {
      owned.push_back(std::make_unique<sim::Simulator>(seed));
      sims.push_back(owned.back().get());
    }
    network = std::make_unique<net::Network>(*sims[0]);
    if (shards > 1) network->set_shards(sims);
  }

  net::Node& add(const std::string& name, std::uint32_t shard) {
    net::Node& n = network->add_node(name, {}, shard);
    n.set_receive_handler([this, name, &n](const net::PacketPtr& p) {
      logs[name].emplace_back(n.simulator().now().ns(), p->id,
                              p->payload_size());
    });
    return n;
  }

  void send_at(net::Node& from, net::Node& to, SimTime at, std::size_t bytes) {
    from.simulator().schedule_in(at, [&from, &to, bytes]() {
      auto p = net::acquire_packet();
      p->dst = to.id();
      p->payload = net::PayloadRef{
          net::make_buffer(std::vector<std::uint8_t>(bytes, 0x5A)), 0, bytes};
      from.send(std::move(p));
    });
  }

  parallel::ShardRunnerStats run() {
    parallel::ShardRunner runner(*network, sims, {});
    runner.run();
    return runner.stats();
  }
};

net::LinkConfig link_ms(std::int64_t delay_ms, double bps = 8e6) {
  net::LinkConfig cfg;
  cfg.propagation_delay = SimTime::milliseconds(delay_ms);
  cfg.bandwidth_bps = bps;
  return cfg;
}

TEST(PdesUnit, CrossShardTrafficMatchesSerial) {
  // A <-> B across the shard cut, bidirectional staggered bursts.
  const auto drive = [](ShardNet& net, std::uint32_t shard_b) {
    net::Node& a = net.add("a", 0);
    net::Node& b = net.add("b", shard_b);
    net.network->connect(a, b, link_ms(10));
    for (int i = 0; i < 8; ++i) {
      net.send_at(a, b, SimTime::milliseconds(3 * i + 1), 400 + 100 * i);
      net.send_at(b, a, SimTime::milliseconds(5 * i + 2), 900 - 50 * i);
    }
  };
  ShardNet serial(1);
  drive(serial, 0);
  serial.run();
  ShardNet sharded(2);
  drive(sharded, 1);
  const auto stats = sharded.run();
  EXPECT_GT(stats.windows, 0u);
  EXPECT_EQ(stats.cross_shard_packets, 16u);
  EXPECT_EQ(serial.logs, sharded.logs);
}

TEST(PdesUnit, SameTimestampArrivalsFromTwoShardsMatchSerialOrder) {
  // A (shard 1) and B (shard 2) both deliver to C (shard 0) at the exact
  // same nanosecond. The serial kernel breaks the tie by insertion order —
  // B transmits first — so the mailbox flush must drain B before A even
  // though A's link (and mailbox) was created first.
  const auto drive = [](ShardNet& net, std::uint32_t sa, std::uint32_t sb) {
    net::Node& c = net.add("c", 0);
    net::Node& a = net.add("a", sa);
    net::Node& b = net.add("b", sb);
    net.network->connect(a, c, link_ms(5));   // mailbox created first
    net.network->connect(b, c, link_ms(10));
    net.send_at(a, c, SimTime::milliseconds(10), 1000);  // arrives at 15ms+s
    net.send_at(b, c, SimTime::milliseconds(5), 1000);   // arrives at 15ms+s
  };
  ShardNet serial(1);
  drive(serial, 0, 0);
  serial.run();

  ShardNet sharded(3);
  drive(sharded, 1, 2);
  sharded.run();

  ASSERT_EQ(serial.logs["c"].size(), 2u);
  // Same arrival instant, B's packet first (it was posted earlier).
  EXPECT_EQ(std::get<0>(serial.logs["c"][0]), std::get<0>(serial.logs["c"][1]));
  EXPECT_EQ(serial.logs, sharded.logs);

  // Determinism: a second sharded run reproduces the first bit-for-bit.
  ShardNet again(3);
  drive(again, 1, 2);
  again.run();
  EXPECT_EQ(sharded.logs, again.logs);
}

TEST(PdesUnit, ZeroLookaheadFallsBackToSerialOrder) {
  const auto drive = [](ShardNet& net, std::uint32_t shard_b) {
    net::Node& a = net.add("a", 0);
    net::Node& b = net.add("b", shard_b);
    net.network->connect(a, b, link_ms(0));  // zero-delay cross-shard link
    for (int i = 0; i < 5; ++i) {
      net.send_at(a, b, SimTime::milliseconds(2 * i), 300);
      net.send_at(b, a, SimTime::milliseconds(2 * i + 1), 500);
    }
  };
  ShardNet serial(1);
  drive(serial, 0);
  serial.run();
  ShardNet sharded(2);
  drive(sharded, 1);
  EXPECT_EQ(sharded.network->cross_shard_lookahead(), SimTime::zero());
  const auto stats = sharded.run();
  EXPECT_GT(stats.serial_fallbacks, 0u);
  EXPECT_EQ(stats.windows, 0u);  // no windowed execution happened
  EXPECT_EQ(serial.logs, sharded.logs);
}

TEST(PdesUnit, IndependentShardsNeedOneWindow) {
  // Two disjoint islands, no cross-shard link: lookahead is infinite and
  // both shards run to completion in a single window.
  const auto drive = [](ShardNet& net, std::uint32_t s2) {
    net::Node& a = net.add("a", 0);
    net::Node& b = net.add("b", 0);
    net::Node& c = net.add("c", s2);
    net::Node& d = net.add("d", s2);
    net.network->connect(a, b, link_ms(3));
    net.network->connect(c, d, link_ms(7));
    net.send_at(a, b, SimTime::milliseconds(1), 700);
    net.send_at(c, d, SimTime::milliseconds(2), 800);
  };
  ShardNet serial(1);
  drive(serial, 0);
  serial.run();
  ShardNet sharded(2);
  drive(sharded, 1);
  EXPECT_EQ(sharded.network->cross_shard_lookahead(), SimTime::infinity());
  const auto stats = sharded.run();
  EXPECT_EQ(stats.windows, 1u);
  EXPECT_EQ(stats.cross_shard_packets, 0u);
  EXPECT_EQ(serial.logs, sharded.logs);
}

// ---------------------------------------------------------------------------
// Scenario level: the acceptance contract. A full campaign sharded across
// kernels must reproduce the serial run byte-for-byte.
// ---------------------------------------------------------------------------

testbed::ScenarioOptions shard_scenario(std::size_t shards) {
  testbed::ScenarioOptions opt;
  opt.profile = cdn::google_like_profile();
  opt.client_count = 6;
  opt.seed = 4242;
  opt.sim_shards = shards;
  return opt;
}

testbed::ExperimentOptions small_experiment() {
  testbed::ExperimentOptions eo;
  eo.reps_per_node = 3;
  eo.interval = 900_ms;
  search::KeywordCatalog catalog(5);
  eo.keywords = {catalog.figure3_keywords().front()};
  return eo;
}

/// The exact TSV block `dyncdn_experiment` prints for a result.
std::string render_tsv(const testbed::ExperimentResult& r) {
  std::string out =
      "node\trtt_ms\tt_static_ms\tt_dynamic_ms\tt_delta_ms\toverall_ms\t"
      "samples\n";
  char row[256];
  for (const auto& n : r.per_node) {
    std::snprintf(row, sizeof(row), "%s\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\t%zu\n",
                  n.node_name.c_str(), n.rtt_ms, n.med_static_ms,
                  n.med_dynamic_ms, n.med_delta_ms, n.med_overall_ms,
                  n.samples);
    out += row;
  }
  return out;
}

void expect_results_identical(const testbed::ExperimentResult& a,
                              const testbed::ExperimentResult& b) {
  ASSERT_EQ(a.boundary, b.boundary);
  ASSERT_EQ(a.per_node_timings.size(), b.per_node_timings.size());
  for (std::size_t n = 0; n < a.per_node_timings.size(); ++n) {
    const auto& qa = a.per_node_timings[n];
    const auto& qb = b.per_node_timings[n];
    ASSERT_EQ(qa.size(), qb.size()) << "node " << n;
    for (std::size_t q = 0; q < qa.size(); ++q) {
      EXPECT_EQ(std::memcmp(&qa[q], &qb[q], sizeof(qa[q])), 0)
          << "node " << n << " query " << q;
    }
  }
  EXPECT_EQ(render_tsv(a), render_tsv(b));
  EXPECT_EQ(obs::export_prometheus(a.metrics),
            obs::export_prometheus(b.metrics));
}

TEST(PdesScenario, ExperimentByteIdenticalAt1_2_4Shards) {
  const auto options = small_experiment();
  testbed::Scenario serial(shard_scenario(1));
  serial.warm_up();
  const auto base = testbed::run_fixed_fe_experiment(serial, 0, options);
  EXPECT_EQ(serial.shard_count(), 1u);

  for (const std::size_t shards : {std::size_t{2}, std::size_t{4}}) {
    testbed::Scenario sharded(shard_scenario(shards));
    EXPECT_EQ(sharded.shard_count(), shards);
    sharded.warm_up();
    const auto r = testbed::run_fixed_fe_experiment(sharded, 0, options);
    expect_results_identical(base, r);
    const auto& st = sharded.shard_stats();
    EXPECT_GT(st.windows, 0u) << shards << " shards";
    EXPECT_GT(st.cross_shard_packets, 0u) << shards << " shards";
  }
}

TEST(PdesScenario, LossAndReorderRetransmissionsStraddleBarriers) {
  // Lossy, reordering client links force RTO/fast retransmissions whose
  // timers (hundreds of ms) dwarf the cross-shard lookahead (a few ms of
  // FE<->BE propagation): every retransmission straddles many window
  // barriers and must land identically.
  const auto options = small_experiment();
  const auto lossy = [](std::size_t shards) {
    auto so = shard_scenario(shards);
    so.client_link_loss = 0.02;
    so.client_link_reorder = 0.05;
    return so;
  };
  testbed::Scenario serial(lossy(1));
  serial.warm_up();
  const auto base = testbed::run_fixed_fe_experiment(serial, 0, options);

  obs::MetricsRegistry m;
  serial.collect_metrics(m);
  EXPECT_GT(m.counter("tcp_retransmits_rto") + m.counter("tcp_retransmits_fast"),
            0u)
      << "loss regime produced no retransmissions - test is vacuous";

  for (const std::size_t shards : {std::size_t{2}, std::size_t{4}}) {
    testbed::Scenario sharded(lossy(shards));
    sharded.warm_up();
    const auto r = testbed::run_fixed_fe_experiment(sharded, 0, options);
    expect_results_identical(base, r);
    EXPECT_GT(sharded.shard_stats().windows, 0u);
  }
}

TEST(PdesScenario, TraceContentMatchesSerial) {
#if !DYNCDN_OBS
  GTEST_SKIP() << "requires span instrumentation (DYNCDN_OBS=ON)";
#endif
  // Span ids and list order are shard-layout dependent (each shard records
  // into its own id range); the *content* — names, categories, timestamps,
  // parent linkage, arg/event counts — must match the serial run exactly.
  const auto fingerprint = [](obs::TraceSession& session) {
    const auto& spans = session.spans();
    std::map<obs::SpanId, const obs::SpanRecord*> by_id;
    for (const auto& s : spans) by_id[s.id] = &s;
    std::vector<std::string> out;
    out.reserve(spans.size());
    for (const auto& s : spans) {
      std::string parent = "-";
      if (auto it = by_id.find(s.parent); it != by_id.end()) {
        parent = it->second->name + "@" +
                 std::to_string(it->second->start.ns());
      }
      out.push_back(s.name + "|" + s.category + "|" +
                    std::to_string(s.start.ns()) + "|" +
                    std::to_string(s.end.ns()) + "|" +
                    std::to_string(s.args.size()) + "|" +
                    std::to_string(s.events.size()) + "|" + parent);
    }
    std::sort(out.begin(), out.end());
    return out;
  };

  const auto options = small_experiment();
  auto so = shard_scenario(1);
  so.enable_tracing = true;
  testbed::Scenario serial(so);
  serial.warm_up();
  const auto base = testbed::run_fixed_fe_experiment(serial, 0, options);
  auto so2 = shard_scenario(2);
  so2.enable_tracing = true;
  testbed::Scenario sharded(so2);
  sharded.warm_up();
  const auto r = testbed::run_fixed_fe_experiment(sharded, 0, options);

  expect_results_identical(base, r);
  ASSERT_NE(serial.trace(), nullptr);
  ASSERT_NE(sharded.trace(), nullptr);
  const auto a = fingerprint(*serial.trace());
  const auto b = fingerprint(*sharded.trace());
  ASSERT_GT(a.size(), 0u);
  EXPECT_EQ(a, b);
}

TEST(PdesScenario, KernelMetricsExposeShardCounters) {
  testbed::Scenario sharded(shard_scenario(2));
  sharded.warm_up();
  testbed::run_fixed_fe_experiment(sharded, 0, small_experiment());

  obs::MetricsRegistry km;
  sharded.collect_kernel_metrics(km);
  EXPECT_EQ(km.gauge("pdes_shards"), 2.0);
  EXPECT_GT(km.counter("sim_events_executed"), 0u);
  EXPECT_GT(km.counter("pdes_windows"), 0u);
  EXPECT_GT(km.counter("pdes_cross_shard_packets"), 0u);
}

TEST(PdesScenario, EnvVarSelectsShardsAndOptionWins) {
  setenv("DYNCDN_SIM_SHARDS", "2", 1);
  testbed::Scenario from_env(shard_scenario(0));
  EXPECT_EQ(from_env.shard_count(), 2u);
  testbed::Scenario explicit_opt(shard_scenario(3));
  EXPECT_EQ(explicit_opt.shard_count(), 3u);
  unsetenv("DYNCDN_SIM_SHARDS");
  testbed::Scenario serial(shard_scenario(0));
  EXPECT_EQ(serial.shard_count(), 1u);
}

TEST(PdesScenario, ComposesWithReplicaParallelism) {
  // Shards inside each scenario, replicas stolen across workers: every
  // combination of 1/2/4 worker threads and 1/2/4 shards must stay
  // byte-identical to the fully serial run. This doubles as the isolation
  // proof for the slab/arena allocators: packet and socket state comes
  // from per-thread slab pools, so any cross-shard reuse bug would show
  // up here as a divergent timing or metric.
  const auto options = small_experiment();
  testbed::ReplicaPlan plan;
  plan.executor.threads = 1;
  const auto base =
      testbed::run_fixed_fe_experiment(shard_scenario(1), 0, options, plan);
  for (const std::size_t threads :
       {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    for (const std::size_t shards :
         {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
      if (threads == 1 && shards == 1) continue;  // the base run itself
      plan.executor.threads = threads;
      const auto r = testbed::run_fixed_fe_experiment(shard_scenario(shards),
                                                      0, options, plan);
      expect_results_identical(base, r);
    }
  }
}

}  // namespace
}  // namespace dyncdn
