// Shared test scaffolding: a two-node (client/server) network with TCP
// stacks and an optional middle relay, plus small helpers used by the TCP,
// HTTP and CDN test suites.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/loss_model.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "tcp/stack.hpp"

namespace dyncdn::testing {

/// Loss model that drops an exact set of packet indices (0-based count of
/// packets offered to the link). Deterministic fault injection.
class DropNth final : public net::LossModel {
 public:
  explicit DropNth(std::vector<std::uint64_t> indices)
      : indices_(std::move(indices)) {}
  bool should_drop(sim::RngStream&) override {
    const std::uint64_t i = count_++;
    for (const std::uint64_t d : indices_) {
      if (d == i) return true;
    }
    return false;
  }
  std::string describe() const override { return "drop-nth"; }

 private:
  std::vector<std::uint64_t> indices_;
  std::uint64_t count_ = 0;
};

struct TwoNodeOptions {
  sim::SimTime one_way_delay = sim::SimTime::milliseconds(10);
  double bandwidth_bps = 100e6;
  std::size_t queue_capacity = 1000;
  double loss = 0.0;          // Bernoulli, both directions
  double reordering = 0.0;    // reorder probability, both directions
  /// Extra deterministic drops applied to the server->client direction.
  std::vector<std::uint64_t> drop_indices_s2c;
  std::vector<std::uint64_t> drop_indices_c2s;
  tcp::TcpConfig tcp;
  std::uint64_t seed = 1;
};

/// client <-> server over one bidirectional link.
class TwoNodeHarness {
 public:
  explicit TwoNodeHarness(const TwoNodeOptions& opt = {})
      : simulator(opt.seed), network(simulator) {
    client_node = &network.add_node("client");
    server_node = &network.add_node("server");

    auto make_cfg = [&](const std::vector<std::uint64_t>& drops) {
      net::LinkConfig cfg;
      cfg.propagation_delay = opt.one_way_delay;
      cfg.bandwidth_bps = opt.bandwidth_bps;
      cfg.queue_capacity = opt.queue_capacity;
      cfg.reorder_probability = opt.reordering;
      const double p = opt.loss;
      if (!drops.empty()) {
        cfg.loss_factory = [drops] {
          return std::make_unique<DropNth>(drops);
        };
      } else if (p > 0.0) {
        cfg.loss_factory = [p] { return net::make_bernoulli_loss(p); };
      }
      return cfg;
    };
    network.connect(*client_node, *server_node,
                    make_cfg(opt.drop_indices_c2s),
                    make_cfg(opt.drop_indices_s2c));

    client = std::make_unique<tcp::TcpStack>(*client_node, opt.tcp);
    server = std::make_unique<tcp::TcpStack>(*server_node, opt.tcp);
  }

  sim::Simulator simulator;
  net::Network network;
  net::Node* client_node = nullptr;
  net::Node* server_node = nullptr;
  std::unique_ptr<tcp::TcpStack> client;
  std::unique_ptr<tcp::TcpStack> server;
};

/// Generates `n` printable bytes with a deterministic pattern so transfers
/// can be integrity-checked cheaply.
inline std::string pattern_text(std::size_t n) {
  std::string s;
  s.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    s.push_back(static_cast<char>('A' + (i * 7 + i / 26) % 26));
  }
  return s;
}

}  // namespace dyncdn::testing
