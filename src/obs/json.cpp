#include "obs/json.hpp"

#include <cctype>
#include <cstdlib>

namespace dyncdn::obs::json {

const Value* Value::get(std::string_view key) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::int64_t Value::as_int(std::int64_t fallback) const {
  if (type != Type::kNumber) return fallback;
  return is_integer ? integer : static_cast<std::int64_t>(number);
}

double Value::as_double(double fallback) const {
  if (type != Type::kNumber) return fallback;
  return is_integer ? static_cast<double>(integer) : number;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<Value> run() {
    auto v = parse_value();
    if (!v) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) return std::nullopt;  // trailing garbage
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  std::optional<Value> parse_value() {
    skip_ws();
    if (pos_ >= text_.size()) return std::nullopt;
    const char c = text_[pos_];
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return parse_string_value();
      case 't':
        if (!literal("true")) return std::nullopt;
        return make_bool(true);
      case 'f':
        if (!literal("false")) return std::nullopt;
        return make_bool(false);
      case 'n':
        if (!literal("null")) return std::nullopt;
        return Value{};
      default: return parse_number();
    }
  }

  static Value make_bool(bool b) {
    Value v;
    v.type = Value::Type::kBool;
    v.boolean = b;
    return v;
  }

  std::optional<Value> parse_object() {
    if (!consume('{')) return std::nullopt;
    Value v;
    v.type = Value::Type::kObject;
    skip_ws();
    if (consume('}')) return v;
    while (true) {
      skip_ws();
      auto key = parse_string_raw();
      if (!key || !consume(':')) return std::nullopt;
      auto member = parse_value();
      if (!member) return std::nullopt;
      v.object.emplace_back(std::move(*key), std::move(*member));
      if (consume(',')) continue;
      if (consume('}')) return v;
      return std::nullopt;
    }
  }

  std::optional<Value> parse_array() {
    if (!consume('[')) return std::nullopt;
    Value v;
    v.type = Value::Type::kArray;
    skip_ws();
    if (consume(']')) return v;
    while (true) {
      auto element = parse_value();
      if (!element) return std::nullopt;
      v.array.push_back(std::move(*element));
      if (consume(',')) continue;
      if (consume(']')) return v;
      return std::nullopt;
    }
  }

  std::optional<Value> parse_string_value() {
    auto s = parse_string_raw();
    if (!s) return std::nullopt;
    Value v;
    v.type = Value::Type::kString;
    v.string = std::move(*s);
    return v;
  }

  std::optional<std::string> parse_string_raw() {
    if (pos_ >= text_.size() || text_[pos_] != '"') return std::nullopt;
    ++pos_;
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return std::nullopt;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return std::nullopt;
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return std::nullopt;
            }
          }
          // The exporter only emits \u00xx for control bytes; decode the
          // BMP code point as UTF-8 without surrogate-pair handling.
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: return std::nullopt;
      }
    }
    return std::nullopt;  // unterminated
  }

  std::optional<Value> parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    bool integral = true;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '-' ||
                 c == '+') {
        if (c != '-' || (pos_ > start && (text_[pos_ - 1] == 'e' ||
                                          text_[pos_ - 1] == 'E'))) {
          integral = false;
          ++pos_;
        } else {
          break;
        }
      } else {
        break;
      }
    }
    if (pos_ == start) return std::nullopt;
    const std::string token(text_.substr(start, pos_ - start));
    Value v;
    v.type = Value::Type::kNumber;
    char* end = nullptr;
    if (integral) {
      v.integer = std::strtoll(token.c_str(), &end, 10);
      v.is_integer = end == token.c_str() + token.size();
      v.number = static_cast<double>(v.integer);
      if (v.is_integer) return v;
      end = nullptr;
    }
    v.is_integer = false;
    v.number = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return std::nullopt;
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::optional<Value> parse(std::string_view text) {
  return Parser(text).run();
}

}  // namespace dyncdn::obs::json
