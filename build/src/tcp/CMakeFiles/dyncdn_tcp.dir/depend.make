# Empty dependencies file for dyncdn_tcp.
# This may be replaced when dependencies are built.
