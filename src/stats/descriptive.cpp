#include "stats/descriptive.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <numeric>

namespace dyncdn::stats {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return std::accumulate(xs.begin(), xs.end(), 0.0) /
         static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double ss = 0.0;
  for (const double x : xs) ss += (x - m) * (x - m);
  return std::sqrt(ss / static_cast<double>(xs.size() - 1));
}

double coefficient_of_variation(std::span<const double> xs) {
  const double m = mean(xs);
  if (m == 0.0) return 0.0;
  return stddev(xs) / m;
}

namespace {
std::vector<double> sorted_copy(std::span<const double> xs) {
  std::vector<double> s(xs.begin(), xs.end());
  std::sort(s.begin(), s.end());
  return s;
}

double quantile_sorted(const std::vector<double>& s, double q) {
  if (s.empty()) return 0.0;
  if (s.size() == 1) return s.front();
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(s.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= s.size()) return s.back();
  return s[lo] * (1.0 - frac) + s[lo + 1] * frac;
}
}  // namespace

double median(std::span<const double> xs) { return quantile(xs, 0.5); }

double quantile(std::span<const double> xs, double q) {
  return quantile_sorted(sorted_copy(xs), q);
}

double min_of(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return *std::min_element(xs.begin(), xs.end());
}

double max_of(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return *std::max_element(xs.begin(), xs.end());
}

std::vector<double> moving_median(std::span<const double> xs,
                                  std::size_t window) {
  std::vector<double> out;
  out.reserve(xs.size());
  if (window == 0) window = 1;
  std::vector<double> buf;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const std::size_t lo = (i + 1 >= window) ? i + 1 - window : 0;
    buf.assign(xs.begin() + static_cast<std::ptrdiff_t>(lo),
               xs.begin() + static_cast<std::ptrdiff_t>(i + 1));
    out.push_back(median(buf));
  }
  return out;
}

std::vector<double> moving_mean(std::span<const double> xs,
                                std::size_t window) {
  std::vector<double> out;
  out.reserve(xs.size());
  if (window == 0) window = 1;
  double acc = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    acc += xs[i];
    if (i >= window) acc -= xs[i - window];
    const std::size_t n = std::min(i + 1, window);
    out.push_back(acc / static_cast<double>(n));
  }
  return out;
}

Summary summarize(std::span<const double> xs) {
  Summary s;
  s.n = xs.size();
  if (xs.empty()) return s;
  const std::vector<double> sorted = sorted_copy(xs);
  s.min = sorted.front();
  s.q1 = quantile_sorted(sorted, 0.25);
  s.median = quantile_sorted(sorted, 0.5);
  s.q3 = quantile_sorted(sorted, 0.75);
  s.max = sorted.back();
  s.mean = mean(xs);
  s.stddev = stddev(xs);
  return s;
}

std::string Summary::to_string() const {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "n=%zu min=%.3f q1=%.3f med=%.3f q3=%.3f max=%.3f "
                "mean=%.3f sd=%.3f",
                n, min, q1, median, q3, max, mean, stddev);
  return buf;
}

double iqr(std::span<const double> xs) {
  return quantile(xs, 0.75) - quantile(xs, 0.25);
}

}  // namespace dyncdn::stats
