// Bootstrap confidence intervals.
//
// The paper reports Fig. 9's regression intercept as *the* back-end
// processing time without any uncertainty; resampling the (distance,
// T_dynamic) points gives the interval that claim deserves. Generic over
// any statistic computed from paired samples.
#pragma once

#include <functional>
#include <span>
#include <string>

#include "sim/random.hpp"

namespace dyncdn::stats {

struct BootstrapInterval {
  double point = 0;   // statistic on the original sample
  double lo = 0;      // percentile interval bounds
  double hi = 0;
  double level = 0.95;
  std::size_t resamples = 0;

  bool contains(double v) const { return v >= lo && v <= hi; }
  /// "12.3 [10.1, 14.9] (95% CI, 1000 resamples)"
  std::string to_string() const;
};

/// Statistic over one sample of doubles (e.g. median, mean).
using Statistic = std::function<double(std::span<const double>)>;

/// Percentile bootstrap for a statistic of a single sample.
BootstrapInterval bootstrap_interval(std::span<const double> sample,
                                     const Statistic& statistic,
                                     std::size_t resamples, double level,
                                     sim::RngStream& rng);

/// Statistic over paired samples (e.g. regression slope/intercept).
using PairedStatistic = std::function<double(std::span<const double>,
                                             std::span<const double>)>;

/// Case-resampling bootstrap for paired data: resamples (x_i, y_i) pairs.
BootstrapInterval bootstrap_paired_interval(std::span<const double> xs,
                                            std::span<const double> ys,
                                            const PairedStatistic& statistic,
                                            std::size_t resamples,
                                            double level,
                                            sim::RngStream& rng);

/// Convenience: 95% CI on the OLS intercept / slope of y ~ x.
BootstrapInterval bootstrap_intercept_ci(std::span<const double> xs,
                                         std::span<const double> ys,
                                         sim::RngStream& rng,
                                         std::size_t resamples = 1000);
BootstrapInterval bootstrap_slope_ci(std::span<const double> xs,
                                     std::span<const double> ys,
                                     sim::RngStream& rng,
                                     std::size_t resamples = 1000);

}  // namespace dyncdn::stats
