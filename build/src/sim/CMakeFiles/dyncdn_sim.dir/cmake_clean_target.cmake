file(REMOVE_RECURSE
  "libdyncdn_sim.a"
)
