// TCP property suites: parameterized sweeps asserting the transport's
// end-to-end invariants under adverse path conditions — payload integrity,
// clean teardown, bounded retransmissions, reordering tolerance, and
// concurrent-connection isolation.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <tuple>

#include "harness.hpp"
#include "tcp/socket.hpp"
#include "tcp/stack.hpp"

namespace dyncdn::tcp {
namespace {

using dyncdn::testing::pattern_text;
using dyncdn::testing::TwoNodeHarness;
using dyncdn::testing::TwoNodeOptions;
using sim::SimTime;
using namespace dyncdn::sim::literals;

constexpr net::Port kPort = 80;

/// Run one client->server transfer with full teardown; returns received
/// bytes and asserts state cleanliness.
std::string run_transfer(TwoNodeHarness& h, const std::string& payload) {
  std::string received;
  bool server_done = false;
  h.server->listen(kPort, [&](TcpSocket& s) {
    TcpSocket::Callbacks cb;
    cb.on_data = [&](net::PayloadRef d) { received += d.to_text(); };
    cb.on_remote_close = [&, sock = &s] {
      server_done = true;
      sock->close();
    };
    s.set_callbacks(std::move(cb));
  });
  TcpSocket& c = h.client->connect({h.server_node->id(), kPort}, {});
  c.send_text(payload);
  c.close();
  h.simulator.run();
  EXPECT_TRUE(server_done);
  EXPECT_EQ(h.client->socket_count(), 0u);
  EXPECT_EQ(h.server->socket_count(), 0u);
  EXPECT_TRUE(h.simulator.idle());
  return received;
}

// ---------------------------------------------------------------------------
// Adverse-path sweep: loss x reordering x delayed-ack x initial window.
// ---------------------------------------------------------------------------

struct PathParams {
  double loss;
  double reordering;
  bool delayed_ack;
  std::size_t iw;

  std::string name() const {
    char buf[80];
    std::snprintf(buf, sizeof(buf), "loss%02d_reord%02d_%s_iw%zu",
                  static_cast<int>(loss * 100),
                  static_cast<int>(reordering * 100),
                  delayed_ack ? "dack" : "ack", iw);
    return buf;
  }
};

class AdversePathSweep : public ::testing::TestWithParam<PathParams> {};

TEST_P(AdversePathSweep, TransferIntactAndClean) {
  const PathParams& p = GetParam();
  TwoNodeOptions opt;
  opt.loss = p.loss;
  opt.reordering = p.reordering;
  opt.tcp.delayed_ack = p.delayed_ack;
  opt.tcp.initial_cwnd_segments = p.iw;
  opt.one_way_delay = 15_ms;
  opt.seed = 7000 + static_cast<std::uint64_t>(p.loss * 100) * 17 +
             static_cast<std::uint64_t>(p.reordering * 100);
  TwoNodeHarness h(opt);
  const std::string payload = pattern_text(60 * 1000);
  EXPECT_EQ(run_transfer(h, payload), payload);
}

INSTANTIATE_TEST_SUITE_P(
    Paths, AdversePathSweep,
    ::testing::Values(
        PathParams{0.00, 0.00, false, 4}, PathParams{0.02, 0.00, false, 4},
        PathParams{0.00, 0.05, false, 4}, PathParams{0.02, 0.05, false, 4},
        PathParams{0.05, 0.10, false, 4}, PathParams{0.00, 0.00, true, 4},
        PathParams{0.02, 0.05, true, 4}, PathParams{0.05, 0.00, true, 2},
        PathParams{0.02, 0.10, false, 10}, PathParams{0.08, 0.05, false, 10},
        PathParams{0.00, 0.30, false, 4}, PathParams{0.03, 0.20, true, 2}),
    [](const ::testing::TestParamInfo<PathParams>& info) {
      return info.param.name();
    });

// ---------------------------------------------------------------------------
// Reordering-specific behaviour.
// ---------------------------------------------------------------------------

TEST(TcpReordering, OutOfOrderSegmentsAreBufferedNotDropped) {
  TwoNodeOptions opt;
  opt.reordering = 0.3;
  opt.seed = 42;
  TwoNodeHarness h(opt);
  const std::string payload = pattern_text(80 * 1448);
  EXPECT_EQ(run_transfer(h, payload), payload);
  // Reordering must actually have happened for this test to mean anything.
  const net::Link* link =
      h.network.first_hop_link(h.client_node->id(), h.server_node->id());
  ASSERT_NE(link, nullptr);
  EXPECT_GT(link->stats().packets_reordered, 0u);
}

TEST(TcpReordering, SpuriousFastRetransmitsDoNotCorruptStream) {
  // Heavy reordering triggers dupacks and some spurious retransmissions;
  // the receiver must still deliver an intact stream exactly once.
  TwoNodeOptions opt;
  opt.reordering = 0.5;
  opt.seed = 43;
  TwoNodeHarness h(opt);

  std::string received;
  h.server->listen(kPort, [&](TcpSocket& s) {
    TcpSocket::Callbacks cb;
    cb.on_data = [&](net::PayloadRef d) { received += d.to_text(); };
    s.set_callbacks(std::move(cb));
  });
  TcpSocket& c = h.client->connect({h.server_node->id(), kPort}, {});
  const std::string payload = pattern_text(50 * 1448);
  c.send_text(payload);
  h.simulator.run();
  EXPECT_EQ(received.size(), payload.size());  // exactly once, no dupes
  EXPECT_EQ(received, payload);
}

// ---------------------------------------------------------------------------
// Concurrency: many connections sharing stacks must not interfere.
// ---------------------------------------------------------------------------

class ConcurrentConnections : public ::testing::TestWithParam<int> {};

TEST_P(ConcurrentConnections, StreamsAreIsolated) {
  const int n = GetParam();
  TwoNodeOptions opt;
  opt.loss = 0.01;
  opt.seed = 555 + static_cast<std::uint64_t>(n);
  TwoNodeHarness h(opt);

  std::map<net::Port, std::string> received;  // keyed by client port
  h.server->listen(kPort, [&](TcpSocket& s) {
    const net::Port client_port = s.flow().remote.port;
    TcpSocket::Callbacks cb;
    cb.on_data = [&received, client_port](net::PayloadRef d) {
      received[client_port] += d.to_text();
    };
    s.set_callbacks(std::move(cb));
  });

  std::map<net::Port, std::string> sent;
  for (int i = 0; i < n; ++i) {
    TcpSocket& c = h.client->connect({h.server_node->id(), kPort}, {});
    const std::string payload =
        "conn" + std::to_string(i) + ":" + pattern_text(5000 + 997 * i);
    sent[c.flow().local.port] = payload;
    c.send_text(payload);
  }
  h.simulator.run();

  ASSERT_EQ(received.size(), sent.size());
  for (const auto& [port, payload] : sent) {
    EXPECT_EQ(received[port], payload) << "port " << port;
  }
}

INSTANTIATE_TEST_SUITE_P(Fanout, ConcurrentConnections,
                         ::testing::Values(2, 8, 32));

// ---------------------------------------------------------------------------
// Duplex: both directions transfer simultaneously on one connection.
// ---------------------------------------------------------------------------

class DuplexTransfer
    : public ::testing::TestWithParam<std::tuple<std::size_t, double>> {};

TEST_P(DuplexTransfer, BothDirectionsIntact) {
  const auto [size, loss] = GetParam();
  TwoNodeOptions opt;
  opt.loss = loss;
  opt.seed = 900 + size;
  TwoNodeHarness h(opt);

  const std::string c2s = "c2s:" + pattern_text(size);
  const std::string s2c = "s2c:" + pattern_text(size + 333);
  std::string client_got, server_got;

  h.server->listen(kPort, [&](TcpSocket& s) {
    TcpSocket::Callbacks cb;
    cb.on_data = [&](net::PayloadRef d) { server_got += d.to_text(); };
    s.set_callbacks(std::move(cb));
    s.send_text(s2c);  // server pushes immediately upon accept
  });
  TcpSocket::Callbacks ccb;
  ccb.on_data = [&](net::PayloadRef d) { client_got += d.to_text(); };
  TcpSocket& c = h.client->connect({h.server_node->id(), kPort},
                                   std::move(ccb));
  c.send_text(c2s);
  h.simulator.run();

  EXPECT_EQ(server_got, c2s);
  EXPECT_EQ(client_got, s2c);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, DuplexTransfer,
    ::testing::Combine(::testing::Values<std::size_t>(1000, 40000, 200000),
                       ::testing::Values(0.0, 0.02)));

// ---------------------------------------------------------------------------
// Flow-control edge cases.
// ---------------------------------------------------------------------------

class TinyWindowSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TinyWindowSweep, WindowLimitedTransfersComplete) {
  // Receiver windows down to a single segment must still make progress.
  TwoNodeOptions opt;
  opt.tcp.receive_buffer = GetParam();
  opt.seed = 321;
  TwoNodeHarness h(opt);
  const std::string payload = pattern_text(20 * 1448);
  EXPECT_EQ(run_transfer(h, payload), payload);
}

INSTANTIATE_TEST_SUITE_P(Windows, TinyWindowSweep,
                         ::testing::Values(1448, 2 * 1448, 3 * 1448,
                                           16 * 1448));

TEST(TcpEdge, SingleByteTransfers) {
  TwoNodeHarness h;
  EXPECT_EQ(run_transfer(h, "x"), "x");
}

TEST(TcpEdge, ExactlyOneMss) {
  TwoNodeHarness h;
  const std::string payload = pattern_text(1448);
  EXPECT_EQ(run_transfer(h, payload), payload);
}

TEST(TcpEdge, ManySmallWritesCoalesceToFewSegments) {
  // A sender with queued small writes must pack them into MSS-sized
  // segments (byte-stream semantics), not one packet per write.
  TwoNodeHarness h;
  std::string received;
  h.server->listen(kPort, [&](TcpSocket& s) {
    TcpSocket::Callbacks cb;
    cb.on_data = [&](net::PayloadRef d) { received += d.to_text(); };
    s.set_callbacks(std::move(cb));
  });
  std::uint64_t data_packets = 0;
  h.client_node->add_send_tap([&](const net::PacketPtr& p) {
    if (p->payload_size() > 0) ++data_packets;
  });
  TcpSocket& c = h.client->connect({h.server_node->id(), kPort}, {});
  std::string expected;
  for (int i = 0; i < 200; ++i) {
    const std::string chunk = "w" + std::to_string(i) + ";";
    expected += chunk;
    c.send_text(chunk);  // queued pre-connect: all available at once
  }
  h.simulator.run();
  EXPECT_EQ(received, expected);
  // ~900 bytes total: must fit in a couple of segments, not 200.
  EXPECT_LE(data_packets, 3u);
}

TEST(TcpEdge, SimultaneousClose) {
  TwoNodeHarness h;
  bool client_closed = false, server_closed = false;
  TcpSocket* server_sock = nullptr;
  h.server->listen(kPort, [&](TcpSocket& s) {
    server_sock = &s;
    TcpSocket::Callbacks cb;
    cb.on_closed = [&] { server_closed = true; };
    s.set_callbacks(std::move(cb));
  });
  TcpSocket::Callbacks ccb;
  ccb.on_closed = [&] { client_closed = true; };
  TcpSocket& c = h.client->connect({h.server_node->id(), kPort},
                                   std::move(ccb));
  h.simulator.run();  // establish
  ASSERT_NE(server_sock, nullptr);
  // Both ends close in the same instant: FINs cross in flight.
  c.close();
  server_sock->close();
  h.simulator.run();
  EXPECT_TRUE(client_closed);
  EXPECT_TRUE(server_closed);
  EXPECT_EQ(h.client->socket_count(), 0u);
  EXPECT_EQ(h.server->socket_count(), 0u);
}

TEST(TcpEdge, RetransmissionCountsAreBounded) {
  // At 2% loss a 100-segment transfer should see a handful of
  // retransmissions, not a blowup (sanity on recovery behaviour).
  TwoNodeOptions opt;
  opt.loss = 0.02;
  opt.seed = 777;
  TwoNodeHarness h(opt);
  std::string received;
  h.server->listen(kPort, [&](TcpSocket& s) {
    TcpSocket::Callbacks cb;
    cb.on_data = [&](net::PayloadRef d) { received += d.to_text(); };
    s.set_callbacks(std::move(cb));
  });
  TcpSocket& c = h.client->connect({h.server_node->id(), kPort}, {});
  const std::string payload = pattern_text(100 * 1448);
  c.send_text(payload);
  h.simulator.run();
  EXPECT_EQ(received, payload);
  const auto& st = c.stats();
  EXPECT_LT(st.retransmits_fast + st.retransmits_rto, 30u);
}

TEST(TcpEdge, ConnectionSurvivesLongIdlePeriods) {
  TwoNodeHarness h;
  std::string received;
  h.server->listen(kPort, [&](TcpSocket& s) {
    TcpSocket::Callbacks cb;
    cb.on_data = [&](net::PayloadRef d) { received += d.to_text(); };
    s.set_callbacks(std::move(cb));
  });
  TcpSocket& c = h.client->connect({h.server_node->id(), kPort}, {});
  c.send_text("first");
  h.simulator.run();
  // Hours of simulated idle time: no timers should fire, state intact.
  h.simulator.run_until(h.simulator.now() + sim::SimTime::seconds(7200));
  EXPECT_TRUE(h.simulator.idle());
  c.send_text("second");
  h.simulator.run();
  EXPECT_EQ(received, "firstsecond");
  EXPECT_EQ(c.state(), TcpState::kEstablished);
}


TEST(TcpCwndValidation, IdleConnectionDecaysCwnd) {
  TwoNodeOptions opt;
  opt.tcp.cwnd_validation = true;
  opt.tcp.initial_cwnd_segments = 2;
  TwoNodeHarness h(opt);
  std::string received;
  h.server->listen(kPort, [&](TcpSocket& s) {
    TcpSocket::Callbacks cb;
    cb.on_data = [&](net::PayloadRef d) { received += d.to_text(); };
    s.set_callbacks(std::move(cb));
  });
  TcpSocket& c = h.client->connect({h.server_node->id(), kPort}, {});
  c.send_text(pattern_text(60 * 1448));  // ramp cwnd well beyond IW
  h.simulator.run();
  const std::size_t ramped = c.cwnd_bytes();
  EXPECT_GT(ramped, 10u * 1448u);

  // Long idle, then another write: cwnd must have decayed to the restart
  // window before the new burst goes out.
  h.simulator.run_until(h.simulator.now() + sim::SimTime::seconds(30));
  std::size_t first_burst = 0;
  bool counting = true;
  h.client_node->add_send_tap([&](const net::PacketPtr& p) {
    if (counting && p->payload_size() > 0) ++first_burst;
  });
  c.send_text(pattern_text(40 * 1448));
  h.simulator.run_steps(1);  // emit the initial burst only
  counting = false;
  EXPECT_LE(first_burst, 2u);  // restart window = IW = 2 segments
  h.simulator.run();
  EXPECT_EQ(received.size(), 100u * 1448u);
}

TEST(TcpCwndValidation, DisabledKeepsCwndAcrossIdle) {
  TwoNodeOptions opt;
  opt.tcp.cwnd_validation = false;
  opt.tcp.initial_cwnd_segments = 2;
  TwoNodeHarness h(opt);
  h.server->listen(kPort, [](TcpSocket& s) {
    s.set_callbacks(TcpSocket::Callbacks{});
  });
  TcpSocket& c = h.client->connect({h.server_node->id(), kPort}, {});
  c.send_text(pattern_text(60 * 1448));
  h.simulator.run();
  const std::size_t ramped = c.cwnd_bytes();
  h.simulator.run_until(h.simulator.now() + sim::SimTime::seconds(30));
  c.send_text(pattern_text(1448));
  h.simulator.run();
  EXPECT_EQ(c.cwnd_bytes() >= ramped, true);
}

TEST(TcpCwndValidation, ShortGapsDoNotDecay) {
  TwoNodeOptions opt;
  opt.tcp.cwnd_validation = true;
  TwoNodeHarness h(opt);
  h.server->listen(kPort, [](TcpSocket& s) {
    s.set_callbacks(TcpSocket::Callbacks{});
  });
  TcpSocket& c = h.client->connect({h.server_node->id(), kPort}, {});
  c.send_text(pattern_text(40 * 1448));
  h.simulator.run();
  const std::size_t ramped = c.cwnd_bytes();
  // Idle far below one RTO (RTO floor is 200ms).
  h.simulator.run_until(h.simulator.now() + 50_ms);
  c.send_text(pattern_text(1448));
  h.simulator.run();
  EXPECT_GE(c.cwnd_bytes(), ramped);
}

}  // namespace
}  // namespace dyncdn::tcp
