# Empty dependencies file for fig9_fetch_factoring.
# This may be replaced when dependencies are built.
