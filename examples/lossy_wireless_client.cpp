// Lossy last hop (§6 discussion): "In an environment where the loss rates
// are high (e.g., in a wireless network), placing FEs closer to users in
// fact may significantly improve the user-perceived end-to-end
// performance."
//
// We sweep the FE placement fraction f along a fixed client-BE path
// (f=0: FE at the client; f=1: FE at the data center) for several loss
// rates on the client's access leg, and report the median overall delay.
// On a clean link the optimum sits near the data center (the fetch time,
// ~C internal round trips, dominates); as the last hop gets lossy, each
// recovery round trip costs the client-side RTT and the optimum shifts
// toward the user — §6's point.
#include <cstdio>
#include <vector>

#include "cdn/backend.hpp"
#include "cdn/client.hpp"
#include "cdn/deployment.hpp"
#include "cdn/frontend.hpp"
#include "net/network.hpp"
#include "search/content_model.hpp"
#include "sim/simulator.hpp"
#include "stats/descriptive.hpp"

using namespace dyncdn;
using namespace dyncdn::sim::literals;

namespace {

double median_overall(double fraction, double loss, std::size_t reps,
                      std::uint64_t seed) {
  const double total_one_way_ms = 60.0;
  sim::Simulator simulator(seed);
  net::Network network(simulator);
  search::ContentModel content(search::ContentProfile{}, "Wireless");

  net::Node& client_node = network.add_node("client");
  net::Node& fe_node = network.add_node("fe");
  net::Node& be_node = network.add_node("be");

  // The client's (wireless) access leg carries the loss; its latency grows
  // with the FE's distance from the client.
  net::LinkConfig access;
  access.propagation_delay =
      sim::SimTime::from_milliseconds(2.0 + total_one_way_ms * fraction);
  access.bandwidth_bps = 20e6;
  if (loss > 0) {
    access.loss_factory = [loss] { return net::make_bernoulli_loss(loss); };
  }
  network.connect(client_node, fe_node, access);

  net::LinkConfig internal;
  internal.propagation_delay = sim::SimTime::from_milliseconds(
      0.5 + total_one_way_ms * (1.0 - fraction));
  internal.bandwidth_bps = 1e9;
  network.connect(fe_node, be_node, internal);

  const cdn::ServiceProfile profile = cdn::google_like_profile();
  cdn::BackendDataCenter::Config be_cfg;
  be_cfg.processing = profile.processing;
  be_cfg.processing.load.sigma = 0.02;
  be_cfg.tcp = profile.internal_tcp;
  cdn::BackendDataCenter backend(be_node, content, be_cfg);

  cdn::FrontEndServer::Config fe_cfg;
  fe_cfg.backend = backend.fetch_endpoint();
  fe_cfg.service.median_ms = 2.0;
  fe_cfg.service.sigma = 0.02;
  fe_cfg.client_tcp = profile.client_tcp;
  fe_cfg.backend_tcp = profile.internal_tcp;
  cdn::FrontEndServer frontend(fe_node, content, fe_cfg);

  cdn::QueryClient client(client_node, profile.client_tcp);
  simulator.run_until(simulator.now() + 3_s);

  // A long query: a bigger response means more packets crossing the lossy
  // hop, like a rich result page on a phone.
  const search::Keyword keyword{
      "wireless network loss recovery behaviour study example",
      search::KeywordClass::kComplex, 5000};
  std::vector<double> overall;
  for (std::size_t r = 0; r < reps; ++r) {
    cdn::QueryResult result;
    client.submit(frontend.client_endpoint(), keyword,
                  [&](const cdn::QueryResult& res) { result = res; });
    simulator.run();
    if (!result.failed) {
      overall.push_back(result.overall_delay().to_milliseconds());
    }
  }
  return stats::median(overall);
}

}  // namespace

int main() {
  const std::vector<double> fractions{0.1, 0.3, 0.5, 0.7, 0.9};
  const std::vector<double> losses{0.0, 0.02, 0.06};

  std::printf("Median overall delay (ms); FE at fraction f of the 60ms "
              "client-BE path (f=0: at the client)\n\n");
  std::printf("%10s", "loss \\ f");
  for (const double f : fractions) std::printf(" %9.1f", f);
  std::printf("   best f\n");

  for (const double loss : losses) {
    std::printf("%10.2f", loss);
    double best = 1e18;
    double best_f = 0;
    for (const double f : fractions) {
      const double ms = median_overall(
          f, loss, 40,
          300 + static_cast<std::uint64_t>(f * 10 + loss * 1000));
      std::printf(" %9.1f", ms);
      if (ms < best) {
        best = ms;
        best_f = f;
      }
    }
    std::printf(" %8.1f\n", best_f);
  }

  std::printf(
      "\nReading: on a clean link the best placement hugs the data center\n"
      "(fetch time dominates; the placement threshold). As last-hop loss\n"
      "grows, recovery round trips — each costing the client-side RTT —\n"
      "push the optimum toward the user: §6's wireless argument.\n");
  return 0;
}
