// Ablations of the design choices DESIGN.md calls out:
//   A. TCP initial congestion window (IW 2/4/10) on the client path —
//      affects static-portion delivery time and the T_delta regime
//      (reviewer #1 asked whether the services manipulate IW);
//   B. warm vs cold FE->BE persistent connection — the paper's "second
//      key aspect" of FE servers;
//   C. streaming relay vs store-and-forward at the FE;
//   D. immediate vs deferred static delivery — the paper's first key
//      aspect, switched off.
//
// Quick: 10 reps per point. DYNCDN_FULL=1: 30.
#include <cstdio>
#include <optional>

#include "bench_util.hpp"
#include "core/timings.hpp"
#include "search/keywords.hpp"
#include "stats/descriptive.hpp"
#include "testbed/experiment.hpp"
#include "testbed/scenario.hpp"

using namespace dyncdn;
using namespace dyncdn::sim::literals;

namespace {

struct AblationPoint {
  double t_static_ms = 0;
  double t_dynamic_ms = 0;
  double overall_ms = 0;
  double first_fetch_ms = 0;  // true fetch time of the very first query
};

/// One probe client at a 60ms RTT against one FE 300 miles from the BE.
AblationPoint run_point(
    const std::function<void(testbed::ScenarioOptions&)>& tweak,
    std::size_t reps) {
  testbed::ScenarioOptions opt;
  opt.profile = cdn::google_like_profile();
  opt.profile.last_mile_min_ms = 30.0;
  opt.profile.last_mile_max_ms = 30.0;
  opt.profile.fe_service.sigma = 0.02;
  opt.profile.processing.load.sigma = 0.02;
  opt.seed = 202;
  opt.fe_distance_sweep_miles = std::vector<double>{700.0};
  tweak(opt);
  testbed::Scenario scenario(opt);
  scenario.warm_up();

  testbed::ExperimentOptions eo;
  eo.reps_per_node = reps;
  eo.interval = 1100_ms;
  search::KeywordCatalog catalog(12);
  eo.keywords = {catalog.figure3_keywords().front()};
  const auto result = testbed::run_fixed_fe_experiment(scenario, 0, eo);

  AblationPoint p;
  const auto& n = result.per_node.at(0);
  p.t_static_ms = n.med_static_ms;
  p.t_dynamic_ms = n.med_dynamic_ms;
  p.overall_ms = n.med_overall_ms;
  // The very first fetch ever issued (during boundary discovery) is the
  // one that exercises a cold (or warmed) connection.
  const auto& log = scenario.fes()[0].server->fetch_log();
  if (!log.empty()) {
    p.first_fetch_ms = log.front().true_fetch_time().to_milliseconds();
  }
  return p;
}

}  // namespace

int main() {
  const std::size_t reps = bench::full_scale() ? 30 : 10;
  bench::banner("Ablations — FE design choices",
                "probe at 60ms RTT, FE 300mi from BE, " +
                    std::to_string(reps) + " reps per point");

  bench::section("A. client-path initial congestion window");
  std::printf("%8s %12s %12s %12s\n", "IW", "Tstatic", "Tdynamic",
              "overall");
  for (const std::size_t iw : {2u, 4u, 10u}) {
    const AblationPoint p = run_point(
        [iw](testbed::ScenarioOptions& o) { o.client_initial_cwnd = iw; },
        reps);
    std::printf("%8zu %12.1f %12.1f %12.1f\n", static_cast<size_t>(iw),
                p.t_static_ms, p.t_dynamic_ms, p.overall_ms);
  }
  std::printf("expected: larger IW delivers the 9KB static portion in fewer "
              "rounds -> smaller T_static and overall delay\n");

  bench::section("B. warm vs cold FE->BE persistent connection");
  struct WarmCase {
    const char* label;
    bool warm;
    bool cwv;  // RFC 2861 idle decay on the internal path
  };
  for (const WarmCase wc : {WarmCase{"warm", true, false},
                            WarmCase{"cold", false, false},
                            WarmCase{"warm+idle-decay", true, true}}) {
    const AblationPoint p = run_point(
        [wc](testbed::ScenarioOptions& o) {
          o.warm_backend_connection = wc.warm;
          // Make the ramp visible: small initial window internally.
          o.profile.internal_tcp.initial_cwnd_segments = 2;
          o.profile.internal_tcp.receive_buffer = 1 << 20;
          o.profile.internal_tcp.cwnd_validation = wc.cwv;
        },
        reps);
    std::printf("%-16s first-query true fetch = %7.1f ms, med Tdynamic = "
                "%7.1f ms\n",
                wc.label, p.first_fetch_ms, p.t_dynamic_ms);
  }
  std::printf("expected: the pre-warmed connection skips slow-start ramping "
              "on the first fetch (the paper's aspect ii); with RFC 2861\n"
              "idle decay the warm window shrinks between queries, eroding "
              "the benefit — services pin their persistent connections "
              "warm\n");

  bench::section("C. streaming relay vs store-and-forward (low-RTT probe)");
  for (const auto mode : {cdn::FrontEndServer::RelayMode::kStreaming,
                          cdn::FrontEndServer::RelayMode::kStoreAndForward}) {
    const AblationPoint p = run_point(
        [mode](testbed::ScenarioOptions& o) {
          o.relay_mode = mode;
          // Low client RTT: otherwise the client-path delivery gates t5
          // and hides the relay policy entirely.
          o.profile.last_mile_min_ms = 2.0;
          o.profile.last_mile_max_ms = 2.0;
        },
        reps);
    std::printf("%-18s med Tdynamic = %7.1f ms, overall = %7.1f ms\n",
                mode == cdn::FrontEndServer::RelayMode::kStreaming
                    ? "streaming"
                    : "store-and-forward",
                p.t_dynamic_ms, p.overall_ms);
  }
  std::printf("expected: buffering the whole BE response before relaying "
              "delays the first dynamic byte by (C-1) internal RTTs\n");

  bench::section("D. immediate vs deferred static delivery");
  for (const bool immediate : {true, false}) {
    const AblationPoint p = run_point(
        [immediate](testbed::ScenarioOptions& o) {
          o.serve_static_immediately = immediate;
        },
        reps);
    std::printf("%-10s med Tstatic = %7.1f ms, overall = %7.1f ms\n",
                immediate ? "immediate" : "deferred", p.t_static_ms,
                p.overall_ms);
  }
  std::printf("expected: deferring the static portion forfeits the overlap "
              "with the fetch -> T_static inflates by ~the fetch time\n");
  return 0;
}
