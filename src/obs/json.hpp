// Minimal recursive-descent JSON parser — just enough for trace_inspect
// and the tests to read back the Chrome-trace files this library writes.
// No external dependencies; integer literals up to int64 are kept exact
// (nanosecond timestamps must not round-trip through double).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace dyncdn::obs::json {

class Value {
 public:
  enum class Type : std::uint8_t {
    kNull,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject,
  };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::int64_t integer = 0;  // exact when is_integer
  bool is_integer = false;
  std::string string;
  std::vector<Value> array;
  std::vector<std::pair<std::string, Value>> object;  // insertion order

  bool is_object() const { return type == Type::kObject; }
  bool is_array() const { return type == Type::kArray; }

  // Object member lookup; nullptr when absent or not an object.
  const Value* get(std::string_view key) const;

  // Convenience accessors with defaults.
  std::int64_t as_int(std::int64_t fallback = 0) const;
  double as_double(double fallback = 0.0) const;
  const std::string& as_string() const { return string; }
};

// Parse a complete JSON document; nullopt on any syntax error.
std::optional<Value> parse(std::string_view text);

}  // namespace dyncdn::obs::json
