// Hybrid timing-wheel / priority-queue event scheduler for the
// discrete-event kernel.
//
// Events are (time, sequence, callback) triples. The sequence number breaks
// ties deterministically: two events scheduled for the same instant fire in
// scheduling order, which makes whole-simulation runs bit-for-bit
// reproducible regardless of container internals.
//
// Hot-path design: callbacks live in a slot table indexed by small integers;
// the ordering containers hold only POD (time, seq, slot, generation)
// entries. An EventId encodes (slot, generation), so cancel is an O(1)
// generation bump — no hash-set insert/erase — and a stale entry is
// recognized by its generation mismatching the slot's.
//
// Near-term events (within ~134 ms of the drain cursor) go straight into a
// binary min-heap, which pops them in exact (time, seq) order. Far-future
// events — RTO timers, idle timeouts, the cancel-churn-heavy population —
// go into a 3-level hierarchical timing wheel (256 buckets per level,
// 2^21 ns ≈ 2.1 ms level-0 granularity): schedule is an O(1) bucket
// append, and a cancelled wheel entry dies in place when its bucket is
// flushed instead of churning the heap. As simulated time advances, the
// wheel cursor sweeps bucket by bucket: level-0 buckets flush into the
// heap (which restores exact global order — wheel entries keep their
// original seq), and higher-level buckets cascade down one level at a
// time, so every entry is touched O(levels) times total. Events beyond
// the level-2 span (~9.5 h) sit in an overflow list.
//
// Both structures bound garbage from cancel/re-arm churn (TCP re-arms its
// RTO on every ACK): dead heap entries are skimmed at the top, dead wheel
// entries die in place when their bucket flushes, and a joint compaction
// pass sweeps both structures once cancelled entries outnumber live ones.
// Total storage stays O(live events) no matter how hard timers churn, and
// cancel itself never inspects where the entry lives — it is a generation
// bump plus one counter increment.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "sim/callback.hpp"
#include "sim/time.hpp"

namespace dyncdn::sim {

/// Opaque handle identifying a scheduled event; usable for cancellation.
class EventId {
 public:
  constexpr EventId() = default;
  constexpr explicit EventId(std::uint64_t v) : value_(v) {}
  constexpr std::uint64_t value() const { return value_; }
  constexpr bool valid() const { return value_ != 0; }
  friend constexpr bool operator==(EventId, EventId) = default;

 private:
  std::uint64_t value_ = 0;  // 0 = invalid / never scheduled
};

/// Timing-wheel + min-heap hybrid with O(1) generation-counter cancellation.
class EventQueue {
 public:
  using Callback = sim::Callback;

  /// Heap/wheel boundary: events within this many level-0 buckets of the
  /// drain cursor skip the wheel (typical network events — transmissions,
  /// propagation delays — stay pure-heap; RTO-scale timers go to the wheel).
  static constexpr std::int64_t kNearBuckets = 64;
  /// log2 of the level-0 bucket width in ns: 2^21 ns ≈ 2.097 ms.
  static constexpr int kWheelShift = 21;
  static constexpr int kLevels = 3;
  static constexpr std::uint64_t kBucketsPerLevel = 256;
  /// Cancelled entries tolerated before a compaction pass considers
  /// running: a sweep must visit every wheel bucket, so sweeping too
  /// eagerly when few timers are live would dominate the O(1) cancel
  /// path it exists to protect.
  static constexpr std::size_t kCompactSlack = 1024;

  /// A fresh queue per scenario would otherwise pay a dozen
  /// geometric-growth reallocations on each vector before reaching its
  /// steady-state footprint.
  EventQueue() {
    heap_.reserve(64);
    slots_.reserve(64);
    free_slots_.reserve(64);
  }

  /// Schedule `cb` to fire at absolute time `at`. `at` must not precede the
  /// last popped event time (no scheduling into the past).
  EventId schedule(SimTime at, Callback cb);

  /// Cancel a previously scheduled event. Safe to call with an already-fired
  /// or already-cancelled id (no-op). Returns true if the event was pending.
  bool cancel(EventId id);

  bool empty() const { return live_ == 0; }

  /// Time of the earliest pending event; SimTime::infinity() when empty.
  /// May advance the wheel cursor (flushing due buckets into the heap).
  SimTime next_time();

  /// Pop and run the earliest event; returns its scheduled time.
  /// Precondition: !empty().
  SimTime pop_and_run();

  std::size_t pending_count() const { return live_; }

  /// Introspection for stress tests: entries currently in the heap /
  /// wheel+overflow, including cancelled-but-not-yet-collected ones, and
  /// the slot-table size. All are bounded by O(live events) regardless of
  /// cancel churn.
  std::size_t heaped_entries() const { return heap_.size(); }
  std::size_t wheel_entries() const { return wheel_size_; }
  std::size_t slot_count() const { return slots_.size(); }

  /// Lifetime counters for the metrics layer (maintained unconditionally:
  /// one increment / one comparison per schedule or cancel, noise next to
  /// the container push itself).
  std::uint64_t scheduled_count() const { return next_seq_ - 1; }
  std::uint64_t cancelled_count() const { return cancelled_; }
  std::size_t max_heaped() const { return max_heaped_; }
  std::size_t max_wheeled() const { return max_wheeled_; }

 private:
  struct Entry {
    SimTime at;
    std::uint64_t seq;     // global schedule order, breaks time ties
    std::uint32_t slot;
    std::uint32_t gen;
  };
  struct Slot {
    Callback cb;
    std::uint32_t gen = 1;   // bumped when the slot's event fires/cancels
  };
  using Bucket = std::vector<Entry>;

  static bool later(const Entry& a, const Entry& b) {
    if (a.at != b.at) return a.at > b.at;
    return a.seq > b.seq;
  }

  bool entry_dead(const Entry& e) const {
    return slots_[e.slot].gen != e.gen;
  }

  /// Push an entry onto the min-heap.
  void heap_push(Entry e);
  /// Drop cancelled entries from the top of the heap.
  void skim();
  /// Sweep dead entries out of heap, wheel, and overflow once they
  /// dominate the live population.
  void maybe_compact();
  /// Retire a slot whose event fired or was cancelled.
  void retire_slot(std::uint32_t slot);

  /// File an entry (known to be >= kNearBuckets ahead of the cursor) into
  /// the shallowest wheel level that can hold it, or the overflow list.
  void wheel_place(Entry e);
  /// Re-file an entry pulled out of a cascading bucket: near entries go to
  /// the heap, the rest one wheel level down.
  void replace_after_cascade(Entry e);
  /// Advance the cursor one level-0 bucket: cascade any higher-level
  /// buckets whose window begins here, then flush the due level-0 bucket
  /// into the heap (dead entries die in place).
  void step_cursor();
  /// Advance the cursor so every wheel entry with time <= `t` is heaped.
  void drain_wheel_to(SimTime t);
  /// Advance the cursor until the heap is non-empty (requires live wheel
  /// entries) so the true next event is visible at the heap top.
  void advance_until_heap_nonempty();

  std::vector<Entry> heap_;           // binary min-heap via std::*_heap
  std::array<std::array<Bucket, kBucketsPerLevel>, kLevels> wheel_;
  std::vector<Entry> overflow_;       // beyond the level-2 span (~9.5 h)
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::uint64_t cursor_idx0_ = 0;     // level-0 bucket index of the cursor
  std::size_t live_ = 0;              // scheduled and not fired/cancelled
  std::size_t dead_total_ = 0;        // cancelled entries not yet collected
  std::size_t wheel_size_ = 0;        // entries (live or dead) in wheel+overflow
  std::uint64_t next_seq_ = 1;
  std::uint64_t cancelled_ = 0;
  std::size_t max_heaped_ = 0;
  std::size_t max_wheeled_ = 0;
  SimTime last_popped_ = SimTime::zero();
};

}  // namespace dyncdn::sim
